#include "core/drain_graph.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace manatee::core {

namespace {
using NodeId = std::pair<Ggid, std::uint64_t>;
}  // namespace

DrainGraph::DrainGraph(std::vector<std::vector<TraceEvent>> per_rank_events)
    : events_(std::move(per_rank_events)) {}

std::ptrdiff_t DrainGraph::write_marker(int rank, std::uint64_t cycle) const {
  const auto& ev = events_[static_cast<std::size_t>(rank)];
  for (std::size_t i = 0; i < ev.size(); ++i) {
    if (ev[i].kind == TraceEventKind::kImageWritten && ev[i].cycle == cycle) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

std::ptrdiff_t DrainGraph::request_marker(int rank, std::uint64_t cycle) const {
  const auto& ev = events_[static_cast<std::size_t>(rank)];
  for (std::size_t i = 0; i < ev.size(); ++i) {
    if (ev[i].kind == TraceEventKind::kCkptRequestSeen && ev[i].cycle == cycle) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

std::size_t DrainGraph::node_count() const {
  std::set<NodeId> nodes;
  for (const auto& rank_events : events_) {
    for (const auto& e : rank_events) {
      if (e.kind == TraceEventKind::kCollectiveExecuted) nodes.insert({e.ggid, e.seq});
    }
  }
  return nodes.size();
}

std::uint64_t DrainGraph::complete_cycles() const {
  std::uint64_t cycle = 0;
  while (true) {
    const std::uint64_t next = cycle + 1;
    for (int r = 0; r < static_cast<int>(events_.size()); ++r) {
      if (write_marker(r, next) < 0) return cycle;
    }
    cycle = next;
  }
}

DrainCheckResult DrainGraph::check_fully_visited(std::uint64_t cycle) const {
  // Collect, per node, which ranks executed it before their write marker,
  // and the node's member set.
  std::map<NodeId, std::set<int>> visited;
  std::map<NodeId, std::vector<int>> members;

  for (int r = 0; r < static_cast<int>(events_.size()); ++r) {
    const auto marker = write_marker(r, cycle);
    if (marker < 0) {
      return DrainCheckResult::failure("rank " + std::to_string(r) +
                                       " has no image for cycle " +
                                       std::to_string(cycle));
    }
    const auto& ev = events_[static_cast<std::size_t>(r)];
    for (std::ptrdiff_t i = 0; i < marker; ++i) {
      const auto& e = ev[static_cast<std::size_t>(i)];
      if (e.kind != TraceEventKind::kCollectiveExecuted) continue;
      const NodeId node{e.ggid, e.seq};
      visited[node].insert(r);
      auto sorted = e.members;
      std::sort(sorted.begin(), sorted.end());
      auto [it, inserted] = members.emplace(node, sorted);
      if (!inserted && it->second != sorted) {
        return DrainCheckResult::failure(
            "node (ggid=" + std::to_string(e.ggid) + ", seq=" +
            std::to_string(e.seq) + ") recorded with inconsistent member sets");
      }
    }
  }

  for (const auto& [node, ranks] : visited) {
    const auto& m = members[node];
    for (int member : m) {
      if (!ranks.contains(member)) {
        std::ostringstream os;
        os << "unsafe: node (ggid=" << node.first << ", seq=" << node.second
           << ") visited by " << ranks.size() << "/" << m.size()
           << " members before the cycle-" << cycle << " image; rank " << member
           << " missing (Invariant 1/2 violated)";
        return DrainCheckResult::failure(os.str());
      }
    }
  }
  return DrainCheckResult{};
}

DrainCheckResult DrainGraph::check_minimality(std::uint64_t cycle) const {
  // Targets: per ggid, the max SEQ any rank had reached when it first
  // observed the request (exactly what Algorithm 1 computes).
  std::map<Ggid, std::uint64_t> targets;
  for (int r = 0; r < static_cast<int>(events_.size()); ++r) {
    const auto req = request_marker(r, cycle);
    if (req < 0) {
      return DrainCheckResult::failure("rank " + std::to_string(r) +
                                       " never observed the cycle-" +
                                       std::to_string(cycle) + " request");
    }
    std::map<Ggid, std::uint64_t> at_request;
    const auto& ev = events_[static_cast<std::size_t>(r)];
    for (std::ptrdiff_t i = 0; i < req; ++i) {
      const auto& e = ev[static_cast<std::size_t>(i)];
      if (e.kind == TraceEventKind::kCollectiveExecuted) {
        at_request[e.ggid] = std::max(at_request[e.ggid], e.seq);
      }
    }
    for (const auto& [g, s] : at_request) {
      targets[g] = std::max(targets[g], s);
    }
  }

  // The drain itself may legitimately *raise* targets (Figure 3b: executing
  // toward one target pushes another group past its target). Minimality in
  // the paper's sense is therefore checked against the final, cascaded
  // targets: recompute by fixpoint — a node may be executed post-request
  // only if its seq <= cascaded target of its group.
  //
  // Fixpoint construction: start from the request-time targets; any
  // executed node (g, s) with s == targets[g] + 1 whose executing rank had
  // an unmet target at that moment extends targets[g]. Rather than model
  // rank-local target knowledge (implementation detail), we verify the
  // weaker but implementation-independent bound: the per-group executed
  // maxima, ordered by execution dependencies, never exceed the cascade
  // closure. Concretely: iterate — for each rank, walk its pre-write
  // events; an event (g, s) with s > targets[g] is only admissible if at
  // the time of execution the rank still had some group h with
  // seq_r(h) < targets[h]; executing it raises targets[g] to s.
  bool changed = true;
  std::vector<std::size_t> cursor(events_.size(), 0);
  std::vector<std::map<Ggid, std::uint64_t>> rank_seq(events_.size());
  while (changed) {
    changed = false;
    for (int r = 0; r < static_cast<int>(events_.size()); ++r) {
      const auto marker = write_marker(r, cycle);
      const auto& ev = events_[static_cast<std::size_t>(r)];
      auto& pos = cursor[static_cast<std::size_t>(r)];
      auto& seqs = rank_seq[static_cast<std::size_t>(r)];
      while (pos < static_cast<std::size_t>(marker)) {
        const auto& e = ev[pos];
        if (e.kind != TraceEventKind::kCollectiveExecuted) {
          ++pos;
          changed = true;
          continue;
        }
        // Admissible if within current targets...
        const bool within = e.seq <= targets[e.ggid];
        // ...or the rank still owes some target (cascade case).
        bool owes = false;
        for (const auto& [g, t] : targets) {
          std::uint64_t mine = 0;
          if (const auto it = seqs.find(g); it != seqs.end()) mine = it->second;
          if (mine < t) {
            owes = true;
            break;
          }
        }
        if (!within && !owes) {
          std::ostringstream os;
          os << "minimality violated: rank " << r << " executed (ggid=" << e.ggid
             << ", seq=" << e.seq << ") beyond target " << targets[e.ggid]
             << " with no unmet targets of its own";
          return DrainCheckResult::failure(os.str());
        }
        if (!within) targets[e.ggid] = std::max(targets[e.ggid], e.seq);
        seqs[e.ggid] = std::max(seqs[e.ggid], e.seq);
        ++pos;
        changed = true;
      }
    }
  }
  return DrainCheckResult{};
}

DrainCheckResult DrainGraph::check_safe_state(std::uint64_t cycle,
                                              bool minimality) const {
  if (auto r = check_fully_visited(cycle); !r.ok) return r;
  if (minimality) {
    if (auto r = check_minimality(cycle); !r.ok) return r;
  }
  return DrainCheckResult{};
}

}  // namespace manatee::core
