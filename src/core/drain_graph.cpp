#include "core/drain_graph.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace manatee::core {

namespace {
using NodeId = std::pair<Ggid, std::uint64_t>;
}  // namespace

DrainGraph::DrainGraph(std::vector<std::vector<TraceEvent>> per_rank_events,
                       std::map<std::uint64_t, TargetMap> forced_by_cycle)
    : events_(std::move(per_rank_events)),
      forced_by_cycle_(std::move(forced_by_cycle)) {}

std::ptrdiff_t DrainGraph::write_marker(int rank, std::uint64_t cycle) const {
  const auto& ev = events_[static_cast<std::size_t>(rank)];
  for (std::size_t i = 0; i < ev.size(); ++i) {
    if (ev[i].kind == TraceEventKind::kImageWritten && ev[i].cycle == cycle) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

std::ptrdiff_t DrainGraph::request_marker(int rank, std::uint64_t cycle) const {
  const auto& ev = events_[static_cast<std::size_t>(rank)];
  for (std::size_t i = 0; i < ev.size(); ++i) {
    if (ev[i].kind == TraceEventKind::kCkptRequestSeen && ev[i].cycle == cycle) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

std::size_t DrainGraph::node_count() const {
  std::set<NodeId> nodes;
  for (const auto& rank_events : events_) {
    for (const auto& e : rank_events) {
      if (e.kind == TraceEventKind::kCollectiveExecuted) nodes.insert({e.ggid, e.seq});
    }
  }
  return nodes.size();
}

std::uint64_t DrainGraph::complete_cycles() const {
  std::uint64_t cycle = 0;
  while (true) {
    const std::uint64_t next = cycle + 1;
    for (int r = 0; r < static_cast<int>(events_.size()); ++r) {
      if (write_marker(r, next) < 0) return cycle;
    }
    cycle = next;
  }
}

DrainCheckResult DrainGraph::check_fully_visited(std::uint64_t cycle) const {
  // Collect, per node, which ranks executed it before their write marker,
  // and the node's member set.
  std::map<NodeId, std::set<int>> visited;
  std::map<NodeId, std::vector<int>> members;

  for (int r = 0; r < static_cast<int>(events_.size()); ++r) {
    const auto marker = write_marker(r, cycle);
    if (marker < 0) {
      return DrainCheckResult::failure("rank " + std::to_string(r) +
                                       " has no image for cycle " +
                                       std::to_string(cycle));
    }
    const auto& ev = events_[static_cast<std::size_t>(r)];
    for (std::ptrdiff_t i = 0; i < marker; ++i) {
      const auto& e = ev[static_cast<std::size_t>(i)];
      if (e.kind != TraceEventKind::kCollectiveExecuted) continue;
      const NodeId node{e.ggid, e.seq};
      visited[node].insert(r);
      auto sorted = e.members;
      std::sort(sorted.begin(), sorted.end());
      auto [it, inserted] = members.emplace(node, sorted);
      if (!inserted && it->second != sorted) {
        return DrainCheckResult::failure(
            "node (ggid=" + std::to_string(e.ggid) + ", seq=" +
            std::to_string(e.seq) + ") recorded with inconsistent member sets");
      }
    }
  }

  for (const auto& [node, ranks] : visited) {
    const auto& m = members[node];
    for (int member : m) {
      if (!ranks.contains(member)) {
        std::ostringstream os;
        os << "unsafe: node (ggid=" << node.first << ", seq=" << node.second
           << ") visited by " << ranks.size() << "/" << m.size()
           << " members before the cycle-" << cycle << " image; rank " << member
           << " missing (Invariant 1/2 violated)";
        return DrainCheckResult::failure(os.str());
      }
    }
  }
  return DrainCheckResult{};
}

DrainCheckResult DrainGraph::check_minimality(std::uint64_t cycle) const {
  // Targets: per ggid, the max SEQ any rank had reached when it first
  // observed the request (exactly what Algorithm 1 computes).
  std::map<Ggid, std::uint64_t> targets;
  for (int r = 0; r < static_cast<int>(events_.size()); ++r) {
    if (write_marker(r, cycle) < 0) {
      // Also guards the cursor walks below: a deadlocked drain's trace has
      // request markers but no image markers.
      return DrainCheckResult::failure("rank " + std::to_string(r) +
                                       " has no image for cycle " +
                                       std::to_string(cycle));
    }
    const auto req = request_marker(r, cycle);
    if (req < 0) {
      return DrainCheckResult::failure("rank " + std::to_string(r) +
                                       " never observed the cycle-" +
                                       std::to_string(cycle) + " request");
    }
    std::map<Ggid, std::uint64_t> at_request;
    const auto& ev = events_[static_cast<std::size_t>(r)];
    for (std::ptrdiff_t i = 0; i < req; ++i) {
      const auto& e = ev[static_cast<std::size_t>(i)];
      if (e.kind == TraceEventKind::kCollectiveExecuted) {
        at_request[e.ggid] = std::max(at_request[e.ggid], e.seq);
      }
    }
    for (const auto& [g, s] : at_request) {
      targets[g] = std::max(targets[g], s);
    }
  }

  // Targets forced by the coordinator's p2p cascade are part of the cut
  // definition: a rank blocked in a point-to-point receive whose matching
  // send lies beyond a parked peer's frontier legitimately widens the cut.
  if (const auto it = forced_by_cycle_.find(cycle); it != forced_by_cycle_.end()) {
    for (const auto& [g, t] : it->second) {
      targets[g] = std::max(targets[g], t);
    }
  }

  // The drain itself may legitimately *raise* targets (Figure 3b: executing
  // toward one target pushes another group past its target). Minimality in
  // the paper's sense is therefore checked against the final, cascaded
  // targets: recompute by fixpoint — a node may be executed post-request
  // only if its seq <= cascaded target of its group.
  //
  // Fixpoint construction: start from the request-time targets; any
  // executed node (g, s) with s == targets[g] + 1 whose executing rank had
  // an unmet target at that moment extends targets[g]. Rather than model
  // rank-local target knowledge (implementation detail), we verify the
  // weaker but implementation-independent bound: the per-group executed
  // maxima, ordered by execution dependencies, never exceed the cascade
  // closure. Concretely: iterate — for each rank, walk its pre-write
  // events; an event (g, s) with s > targets[g] is only admissible if at
  // the time of execution the rank still had some group h with
  // seq_r(h) < targets[h]; executing it raises targets[g] to s.
  // Group membership, from the recorded member lists: a rank can only
  // "owe" (and thus justify a cascade through) groups it belongs to —
  // without this restriction every rank trivially owes every foreign
  // group's target and minimality never rejects anything.
  std::map<Ggid, std::set<int>> members_of;
  for (const auto& rank_events : events_) {
    for (const auto& e : rank_events) {
      if (e.kind != TraceEventKind::kCollectiveExecuted) continue;
      members_of[e.ggid].insert(e.members.begin(), e.members.end());
    }
  }

  // Fixpoint over per-rank cursors. An event that is not (yet) admissible
  // stalls its rank's cursor rather than failing outright: the raise that
  // justifies it may still be waiting in another rank's unprocessed prefix
  // (target raises propagate in arbitrary order between ranks). Only when
  // a full pass advances nothing and some cursor is still stuck is the
  // cut genuinely non-minimal.
  bool progressed = true;
  std::vector<std::size_t> cursor(events_.size(), 0);
  std::vector<std::map<Ggid, std::uint64_t>> rank_seq(events_.size());
  while (progressed) {
    progressed = false;
    for (int r = 0; r < static_cast<int>(events_.size()); ++r) {
      const auto marker = write_marker(r, cycle);
      const auto& ev = events_[static_cast<std::size_t>(r)];
      auto& pos = cursor[static_cast<std::size_t>(r)];
      auto& seqs = rank_seq[static_cast<std::size_t>(r)];
      while (pos < static_cast<std::size_t>(marker)) {
        const auto& e = ev[pos];
        if (e.kind != TraceEventKind::kCollectiveExecuted) {
          ++pos;
          progressed = true;
          continue;
        }
        // Admissible if within current targets...
        const bool within = e.seq <= targets[e.ggid];
        // ...or the rank still owes some target of a group it belongs to
        // (cascade case).
        bool owes = false;
        for (const auto& [g, t] : targets) {
          const auto mit = members_of.find(g);
          if (mit == members_of.end() || !mit->second.contains(r)) continue;
          std::uint64_t mine = 0;
          if (const auto it = seqs.find(g); it != seqs.end()) mine = it->second;
          if (mine < t) {
            owes = true;
            break;
          }
        }
        if (!within && !owes) break;  // stall: maybe justified by a peer later
        if (!within) targets[e.ggid] = std::max(targets[e.ggid], e.seq);
        seqs[e.ggid] = std::max(seqs[e.ggid], e.seq);
        ++pos;
        progressed = true;
      }
    }
  }

  for (int r = 0; r < static_cast<int>(events_.size()); ++r) {
    const auto marker = write_marker(r, cycle);
    const auto pos = cursor[static_cast<std::size_t>(r)];
    if (pos >= static_cast<std::size_t>(marker)) continue;
    const auto& e = events_[static_cast<std::size_t>(r)][pos];
    std::ostringstream os;
    os << "minimality violated: rank " << r << " executed (ggid=" << e.ggid
       << ", seq=" << e.seq << ") beyond target " << targets[e.ggid]
       << " with no unmet targets of its own";
    return DrainCheckResult::failure(os.str());
  }
  return DrainCheckResult{};
}

DrainCheckResult DrainGraph::check_safe_state(std::uint64_t cycle,
                                              bool minimality) const {
  if (auto r = check_fully_visited(cycle); !r.ok) return r;
  if (minimality) {
    if (auto r = check_minimality(cycle); !r.ok) return r;
  }
  return DrainCheckResult{};
}

}  // namespace manatee::core
