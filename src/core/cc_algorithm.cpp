#include "core/cc_algorithm.hpp"

#include "common/error.hpp"
#include "sched/scheduler.hpp"
#include "umpi/runtime.hpp"
#include "common/log.hpp"

namespace manatee::core {

namespace {

/// Wire format of one target update (Algorithm 2's SEND).
struct TargetUpdate {
  std::uint64_t ggid = 0;
  std::uint64_t value = 0;
};
static_assert(sizeof(TargetUpdate) == 16);

}  // namespace

void CcManager::note_comm(const umpi::CommPtr& comm) {
  common::MutexLock lock(seq_mutex_);
  clocks_.note_group(ggid_of(comm));
}

void CcManager::ensure_request_seen() {
  if (coordinator_.phase() != ckpt::CkptPhase::kDrain) return;
  const std::uint64_t cycle = coordinator_.completed_cycles() + 1;
  if (posted_cycle_ >= cycle) return;
  posted_cycle_ = cycle;
  note_request_observed();
  if (trace_ != nullptr) {
    trace_->record_request_seen(cycle, rank_.clock().now());
  }
  {
    common::MutexLock lock(seq_mutex_);
    coordinator_.post_seq(rank_.world_rank(), clocks_.seq_map());
  }
}

void CcManager::refresh_targets() {
  // Target merges take seq_mutex_: the requesting thread snapshots the
  // table concurrently (post_initial_state / serialize), and an unlocked
  // merge raced those reads. Drain-path only, so the lock is uncontended
  // in steady state.
  // Coordinator table (Algorithm 1's asynchronous max-merge).
  SeqMap table;
  if (coordinator_.pull_targets(seen_version_, table)) {
    SeqMap changed;
    {
      common::MutexLock lock(seq_mutex_);
      clocks_.merge_targets(table, trace_ != nullptr ? &changed : nullptr);
    }
    if (trace_ != nullptr) {
      for (const auto& [g, t] : changed) {
        trace_->record_target_learned(g, t, rank_.clock().now());
      }
    }
  }
  // Peer updates (Algorithm 3's Iprobe/Recv of mana_updates_tag).
  TargetUpdate update;
  auto bytes = std::as_writable_bytes(std::span(&update, 1));
  while (rank_
             .ckpt_try_recv(rank_.world(), bytes, umpi::kAnySource, kTagTargetUpdate)
             .has_value()) {
    ++received_;
    bool merged = false;
    {
      common::MutexLock lock(seq_mutex_);
      merged = clocks_.merge_target(update.ggid, update.value);
    }
    if (merged && trace_ != nullptr) {
      trace_->record_target_learned(update.ggid, update.value,
                                    rank_.clock().now());
    }
  }
}

bool CcManager::targets_met_now() const {
  common::MutexLock lock(seq_mutex_);
  return clocks_.targets_met();
}

void CcManager::report(bool parked, const char* site) {
  if (trace_ != nullptr && parked != reported_parked_) {
    if (parked) {
      trace_->record_parked(site, rank_.clock().now());
    } else {
      trace_->record_unparked(site, rank_.clock().now());
    }
  }
  reported_parked_ = parked;
  ckpt::Coordinator::CcStatus status;
  status.parked = parked;
  status.sent = sent_;
  status.received = received_;
  status.seen_version = seen_version_;
  status.blocked_on = blocked_on_;
  if (entry_comm_ != nullptr) {
    status.has_next = true;
    status.next_ggid = ggid_of(*entry_comm_);
    common::MutexLock lock(seq_mutex_);
    status.next_seq = clocks_.seq(status.next_ggid) + 1;
  }
  coordinator_.report_cc(rank_.world_rank(), status);
}

void CcManager::advance_clock(const umpi::CommPtr& comm) {
  const Ggid ggid = ggid_of(comm);
  std::uint64_t seq = 0;
  {
    common::MutexLock lock(seq_mutex_);
    clocks_.note_group(ggid);
    seq = clocks_.increment(ggid);
  }
  if (trace_ != nullptr) {
    trace_->record_collective(ggid, seq, comm->group.members(),
                              rank_.clock().now());
  }
  if (coordinator_.ckpt_pending()) {
    ensure_request_seen();
    refresh_targets();
    bool raised = false;
    {
      common::MutexLock lock(seq_mutex_);
      raised = clocks_.raise_target_to_seq(ggid);
    }
    if (raised) {
      if (trace_ != nullptr) {
        trace_->record_target_raised(ggid, seq, rank_.clock().now());
      }
      // Algorithm 2, SEND: the new target goes to every other member of the
      // group. The member world ranks are locally known (the paper's
      // MPI_Group_translate_ranks step). Count before injecting so the
      // coordinator can never observe received > sent.
      const auto& members = comm->group.members();
      sent_ += members.size() - 1;
      report(false, "raise");
      const TargetUpdate update{ggid, seq};
      const auto bytes = std::as_bytes(std::span(&update, 1));
      for (int w : members) {
        if (w == rank_.world_rank()) continue;
        const int dst = rank_.world()->group.rank_of_world(w);
        rank_.ckpt_send(rank_.world(), bytes, dst, kTagTargetUpdate);
      }
      LOG_TRACE("cc: raised target ggid=" << ggid << " to " << seq);
    }
  }
}

void CcManager::pre_collective(const umpi::CommPtr& comm) {
  wait_for_new_targets(&comm);
  advance_clock(comm);
}

void CcManager::post_collective(const umpi::CommPtr& comm) {
  (void)comm;
  // Algorithm 2 places Wait_for_new_targets at the wrapper exit as well.
  // Here it only *receives* pending updates; it must not park. Parking at
  // an exit is unsafe for liveness: this rank's next point-to-point send
  // (which precedes its next collective in program order) may be exactly
  // what an unmet-target rank is blocked on. Parking therefore happens only
  // at collective entries, inside suspended blocking waits, and at
  // finalize — all points where no peer can be waiting on this rank's
  // forward progress.
  if (coordinator_.phase() != ckpt::CkptPhase::kDrain) return;
  ensure_request_seen();
  refresh_targets();
  report(false, "exit");
}

void CcManager::pre_nbc(const umpi::CommPtr& comm) {
  // §4.3.1: SEQ increments at initiation; the wrapper parks at entry like a
  // blocking collective, but there is no completion-side park (completion
  // is observed through Test/Wait).
  wait_for_new_targets(&comm);
  advance_clock(comm);
}

void CcManager::register_nbc(umpi::Request request) {
  // Opportunistically prune completed entries so the list stays small.
  std::erase_if(pending_nbc_,
                [this](const umpi::Request& r) { return rank_.request_done(r); });
  pending_nbc_.push_back(request);
}

void CcManager::wait_for_new_targets(const umpi::CommPtr* entry_comm) {
  // While parked at a collective entry, expose which node this rank would
  // execute next — the coordinator's p2p cascade may force it into the
  // target set to unblock a peer.
  entry_comm_ = entry_comm;
  while (true) {
    const auto phase = coordinator_.phase();
    if (phase == ckpt::CkptPhase::kIdle) {
      entry_comm_ = nullptr;
      return;
    }
    if (phase == ckpt::CkptPhase::kWrite) {
      perform_write_cycle();
      continue;
    }
    // kDrain
    const auto token = rank_.store().token();
    ensure_request_seen();
    refresh_targets();
    if (!targets_met_now()) {
      // Condition A': some group still below target — keep executing.
      entry_comm_ = nullptr;
      report(false, "entry");
      return;
    }
    rank_.progress_outstanding();  // parked ranks must progress their NBCs
    report(true, "entry");
    if (coordinator_.phase() != ckpt::CkptPhase::kDrain) continue;
    if (rank_.runtime().aborted()) {
      throw RuntimeFault("peer rank failed during drain");
    }
    rank_.store().wait_changed(token);
  }
}

void CcManager::blocked_step(const std::function<bool()>& done,
                             const ParkHooks* hooks, int blocked_src_world) {
  blocked_on_ = blocked_src_world;
  const auto phase = coordinator_.phase();
  if (phase == ckpt::CkptPhase::kIdle) {
    blocked_on_ = ckpt::Coordinator::kNotBlocked;
    if (blocked_parked_) {
      blocked_parked_ = false;
      if (hooks != nullptr && hooks->resume) hooks->resume();
    }
    return;
  }
  if (phase == ckpt::CkptPhase::kWrite) {
    // Only reachable parked (kWrite needs every rank parked, us included).
    perform_write_cycle();
    if (blocked_parked_) {
      blocked_parked_ = false;
      if (hooks != nullptr && hooks->resume) hooks->resume();
    }
    return;
  }
  // kDrain.
  ensure_request_seen();
  refresh_targets();
  if (!targets_met_now()) {
    // Condition A': this rank still owes collective work; it stays an
    // *executing* (unparked) rank even while blocked here — the message it
    // waits for comes from a peer that sends before parking.
    if (blocked_parked_) {
      blocked_parked_ = false;
      if (hooks != nullptr && hooks->resume) hooks->resume();
    }
    report(false, "blocked");
    return;
  }
  if (!blocked_parked_) {
    // Never park on an operation that has already completed — the caller
    // must consume it and keep running to its next collective entry.
    if (done && done()) return;
    // Detach the in-progress operation (cancel a posted blocking receive)
    // so a message arriving during the write window lands in the saved
    // unexpected queue; passive waits (posted irecv / NBC) stay armed and
    // are captured through the request table.
    if (hooks != nullptr && hooks->suspend && !hooks->suspend()) return;
    blocked_parked_ = true;
  }
  report(true, "blocked");
}

void CcManager::blocked_finish(const ParkHooks* hooks) {
  (void)hooks;
  // The wait completed: this rank is no longer blocked on anyone. Clear
  // the coordinator's record too — a stale blocked_on could otherwise
  // certify a p2p stall against a rank that is actually free-running,
  // forcing a gratuitous target.
  blocked_on_ = ckpt::Coordinator::kNotBlocked;
  if (!blocked_parked_ && coordinator_.phase() == ckpt::CkptPhase::kDrain) {
    report(false, "blocked-finish");
  }
  // The blocked operation completed while parked (its message was sent by
  // a peer that had not yet parked). Resuming is only legal while the
  // drain is still in progress; once the safe state is declared we must
  // write from this exact frozen state — the completed-but-unconsumed
  // operation is captured in the request table and restored as complete.
  while (blocked_parked_) {
    if (coordinator_.phase() == ckpt::CkptPhase::kWrite) {
      perform_write_cycle();
      blocked_parked_ = false;
      break;
    }
    if (coordinator_.try_unpark(rank_.world_rank())) {
      blocked_parked_ = false;
      report(false, "blocked-finish");
      break;
    }
    // This loop polls coordinator state without a blocking wait; under a
    // cooperative fiber backend the ranks whose progress it depends on
    // only run if we give the worker back.
    sched::yield();
  }
}

void CcManager::poll() {
  // Never parks (a rank parked before a send it still owes would deadlock
  // the drain — see DESIGN.md §5); it only makes sure the drain can start
  // while this rank is in a long compute phase.
  if (coordinator_.ckpt_pending()) ensure_request_seen();
}

void CcManager::at_finalize() {
  coordinator_.report_done(rank_.world_rank());
  // Stay until the whole job is done AND no checkpoint cycle is pending —
  // a request that lands as ranks finish must still complete.
  while (!coordinator_.all_done() ||
         coordinator_.phase() != ckpt::CkptPhase::kIdle) {
    const auto phase = coordinator_.phase();
    if (phase == ckpt::CkptPhase::kWrite) {
      perform_write_cycle();
      continue;
    }
    const auto token = rank_.store().token();
    if (phase == ckpt::CkptPhase::kDrain) {
      ensure_request_seen();
      refresh_targets();
      if (!targets_met_now()) {
        throw CheckpointError(
            "finalized rank has unmet collective targets — the application "
            "completed with unbalanced collective calls");
      }
      rank_.progress_outstanding();
      report(true, "finalize");
    }
    if (coordinator_.all_done() && coordinator_.phase() == ckpt::CkptPhase::kIdle) {
      return;
    }
    if (rank_.runtime().aborted()) return;
    rank_.store().wait_changed(token);
  }
}

void CcManager::pre_write() {
  // §4.3.2: every incomplete non-blocking collective was initiated by all
  // members (safe-state invariant), so Test-driving them to completion
  // terminates. Progression rides each operation's own clock; only once
  // everything is done does this rank's clock merge the completion times,
  // so the drain never serializes the operations against each other.
  while (true) {
    const auto token = rank_.store().token();
    rank_.progress_outstanding();
    bool all_done = true;
    for (const auto& request : pending_nbc_) {
      if (!rank_.request_done(request)) all_done = false;
    }
    if (all_done) break;
    rank_.store().wait_changed(token);
  }
  for (const auto& request : pending_nbc_) {
    rank_.merge_request_completion(request);
  }
  pending_nbc_.clear();
}

void CcManager::post_cycle() {
  {
    common::MutexLock lock(seq_mutex_);
    clocks_.clear_targets();
  }
  sent_ = 0;
  received_ = 0;
  seen_version_ = 0;
  reported_parked_ = false;
}

void CcManager::post_initial_state(int world_rank) {
  common::MutexLock lock(seq_mutex_);
  coordinator_.post_seq(world_rank, clocks_.seq_map());
}

void CcManager::serialize(BinaryWriter& w) const {
  common::MutexLock lock(seq_mutex_);
  w.write_u64_map(clocks_.seq_map());
}

void CcManager::restore(BinaryReader& r) {
  common::MutexLock lock(seq_mutex_);
  clocks_.restore_seq(r.read_u64_map());
}

}  // namespace manatee::core
