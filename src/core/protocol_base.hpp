// protocol_base.hpp — shared machinery of the CC and 2PC managers: the
// write-phase handshake (drain extras, capture image, wait for the cycle to
// close) and common bookkeeping.
#pragma once

#include "ckpt/coordinator.hpp"
#include "core/drain_manager.hpp"
#include "core/trace.hpp"
#include "umpi/rank.hpp"

namespace manatee::core {

class ProtocolManagerBase : public DrainManager {
 public:
  ProtocolManagerBase(umpi::Rank& rank, ckpt::Coordinator& coordinator,
                      TraceLog* trace)
      : rank_(rank), coordinator_(coordinator), trace_(trace) {}

  [[nodiscard]] std::uint64_t checkpoints_written() const noexcept {
    return written_cycle_;
  }

  /// Virtual clock when this rank first observed the request of each cycle
  /// (index = cycle - 1). Basis of the Figure 9 checkpoint-time metric.
  [[nodiscard]] const std::vector<simnet::SimTime>& request_clocks() const noexcept {
    return request_clocks_;
  }
  /// Virtual clock when this rank finished writing each cycle's image.
  [[nodiscard]] const std::vector<simnet::SimTime>& write_clocks() const noexcept {
    return write_clocks_;
  }

 protected:
  /// Executed once per checkpoint cycle when the coordinator has declared
  /// the safe state: run protocol-specific pre-write draining, invoke the
  /// engine's capture callback, then block until every rank has written.
  void perform_write_cycle() {
    const std::uint64_t cycle = coordinator_.completed_cycles() + 1;
    if (written_cycle_ < cycle) {
      pre_write();
      if (trace_ != nullptr) trace_->record_written(cycle);
      if (write_fn_) write_fn_();
      written_cycle_ = cycle;
      write_clocks_.push_back(rank_.clock().now());
      coordinator_.report_written(rank_.world_rank());
    }
    while (coordinator_.phase() == ckpt::CkptPhase::kWrite) {
      const auto token = rank_.store().token();
      if (coordinator_.phase() != ckpt::CkptPhase::kWrite) break;
      rank_.store().wait_changed(token);
    }
    post_cycle();
  }

  /// Protocol work that must complete before the image is captured
  /// (CC: drive all initiated non-blocking collectives to completion).
  virtual void pre_write() {}
  /// Reset per-cycle drain state after the cycle closes.
  virtual void post_cycle() {}

  /// Record the first observation of the current cycle's request.
  void note_request_observed() {
    const std::uint64_t cycle = coordinator_.completed_cycles() + 1;
    if (request_clocks_.size() < cycle) {
      request_clocks_.push_back(rank_.clock().now());
    }
  }

  umpi::Rank& rank_;
  ckpt::Coordinator& coordinator_;
  TraceLog* trace_;
  std::uint64_t written_cycle_ = 0;
  std::vector<simnet::SimTime> request_clocks_;
  std::vector<simnet::SimTime> write_clocks_;
};

}  // namespace manatee::core
