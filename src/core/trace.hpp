// trace.hpp — per-rank event traces used by the drain-graph oracle.
//
// Every collective execution and checkpoint lifecycle event is recorded
// with its ggid and sequence number. Tests replay the merged trace through
// the directed-graph model of §4.2.2 and verify the safe-state conditions
// mechanically, independent of the protocol implementation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ggid.hpp"

namespace manatee::core {

enum class TraceEventKind : std::uint8_t {
  kCollectiveExecuted = 0,  ///< blocking collective completed / NBC initiated
  kCkptRequestSeen = 1,     ///< rank first observed the checkpoint request
  kImageWritten = 2,        ///< rank wrote its image (the safe state)
};

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kCollectiveExecuted;
  Ggid ggid = 0;
  std::uint64_t seq = 0;           ///< SEQ[ggid] after the increment
  std::vector<int> members;        ///< world ranks of the group (collectives)
  std::uint64_t cycle = 0;         ///< checkpoint cycle (ckpt events)
};

/// Single-threaded per-rank event log (each rank appends to its own).
class TraceLog {
 public:
  void record_collective(Ggid ggid, std::uint64_t seq, std::vector<int> members) {
    if (!enabled_) return;
    events_.push_back(TraceEvent{TraceEventKind::kCollectiveExecuted, ggid, seq,
                                 std::move(members), 0});
  }

  void record_request_seen(std::uint64_t cycle) {
    if (!enabled_) return;
    events_.push_back(TraceEvent{TraceEventKind::kCkptRequestSeen, 0, 0, {}, cycle});
  }

  void record_written(std::uint64_t cycle) {
    if (!enabled_) return;
    events_.push_back(TraceEvent{TraceEventKind::kImageWritten, 0, 0, {}, cycle});
  }

  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  void clear() { events_.clear(); }

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace manatee::core
