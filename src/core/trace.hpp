// trace.hpp — per-rank structured event traces of the drain engine.
//
// Two consumers:
//   * the drain-graph oracle (drain_graph.hpp) replays the collective /
//     checkpoint lifecycle events through the directed-graph model of
//     §4.2.2 and verifies the safe-state conditions mechanically;
//   * humans debugging a drain failure: every seq-tracker transition
//     (target raised locally, target learned from the coordinator or a
//     peer) and every park/unpark edge is recorded with its wrapper site
//     and virtual-clock stamp, so a deadlocked or unsafe drain can be
//     reconstructed offline (see DESIGN.md "debugging a drain failure").
//
// The log is single-threaded per rank (each rank appends to its own), and
// recording is O(1) per event when enabled, zero-cost when disabled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ggid.hpp"
#include "simnet/time.hpp"

namespace manatee::core {

enum class TraceEventKind : std::uint8_t {
  kCollectiveExecuted = 0,  ///< blocking collective completed / NBC initiated
  kCkptRequestSeen = 1,     ///< rank first observed the checkpoint request
  kImageWritten = 2,        ///< rank wrote its image (the safe state)
  kTargetRaised = 3,        ///< Algorithm 2 SEND: local SEQ pushed TARGET up
  kTargetLearned = 4,       ///< TARGET grew from coordinator table / peer update
  kParked = 5,              ///< rank reported parked (all targets met)
  kUnparked = 6,            ///< rank resumed executing (some target unmet)
};

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kCollectiveExecuted;
  Ggid ggid = 0;
  std::uint64_t seq = 0;     ///< SEQ[ggid] after the increment / new TARGET
  std::vector<int> members;  ///< world ranks of the group (collectives)
  std::uint64_t cycle = 0;   ///< checkpoint cycle (ckpt events)
  const char* site = nullptr;       ///< wrapper site (static string) for
                                    ///  park/unpark events
  simnet::SimTime when = 0;  ///< rank virtual clock at the event
};

/// One line per event, for failure dumps.
[[nodiscard]] std::string describe_event(const TraceEvent& event);

/// The last `n` events of a rank's trace, one line each (diagnostics).
[[nodiscard]] std::string describe_tail(const std::vector<TraceEvent>& events,
                                        std::size_t n);

/// Single-threaded per-rank event log (each rank appends to its own).
class TraceLog {
 public:
  void record_collective(Ggid ggid, std::uint64_t seq, std::vector<int> members,
                         simnet::SimTime when = 0) {
    if (!enabled_) return;
    events_.push_back(TraceEvent{TraceEventKind::kCollectiveExecuted, ggid, seq,
                                 std::move(members), 0, nullptr, when});
  }

  void record_request_seen(std::uint64_t cycle, simnet::SimTime when = 0) {
    if (!enabled_) return;
    events_.push_back(TraceEvent{TraceEventKind::kCkptRequestSeen, 0, 0, {},
                                 cycle, nullptr, when});
  }

  void record_written(std::uint64_t cycle, simnet::SimTime when = 0) {
    if (!enabled_) return;
    events_.push_back(TraceEvent{TraceEventKind::kImageWritten, 0, 0, {}, cycle,
                                 nullptr, when});
  }

  void record_target_raised(Ggid ggid, std::uint64_t target,
                            simnet::SimTime when = 0) {
    if (!enabled_) return;
    events_.push_back(TraceEvent{TraceEventKind::kTargetRaised, ggid, target, {},
                                 0, nullptr, when});
  }

  void record_target_learned(Ggid ggid, std::uint64_t target,
                             simnet::SimTime when = 0) {
    if (!enabled_) return;
    events_.push_back(TraceEvent{TraceEventKind::kTargetLearned, ggid, target,
                                 {}, 0, nullptr, when});
  }

  /// Park/unpark edges. `site` must be a static string ("entry", "blocked",
  /// "finalize", ...).
  void record_parked(const char* site, simnet::SimTime when = 0) {
    if (!enabled_) return;
    events_.push_back(
        TraceEvent{TraceEventKind::kParked, 0, 0, {}, 0, site, when});
  }

  void record_unparked(const char* site, simnet::SimTime when = 0) {
    if (!enabled_) return;
    events_.push_back(
        TraceEvent{TraceEventKind::kUnparked, 0, 0, {}, 0, site, when});
  }

  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  void clear() { events_.clear(); }

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace manatee::core
