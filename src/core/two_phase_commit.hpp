// two_phase_commit.hpp — original MANA's two-phase-commit algorithm
// (paper §2.2), the baseline the CC algorithm replaces.
//
// Every blocking collective wrapper inserts an MPI_Ibarrier on the same
// communicator and spins on MPI_Test. The inserted barrier's messages are
// real traffic through the fabric — that extra synchronization is the
// runtime overhead Figures 5a, 7 and 8 measure. A checkpoint is safe when
// every rank is parked outside MPI and no collective instance has been
// fully entered without completing ("if all processes have entered the
// barrier, then MANA waits until all processes have completed the
// collective call").
//
// 2PC does not support non-blocking collectives (the paper's motivation
// for §4.3): pre_nbc throws.
#pragma once

#include <map>

#include "core/ggid.hpp"
#include "core/protocol_base.hpp"

namespace manatee::core {

class TpcManager final : public ProtocolManagerBase {
 public:
  TpcManager(umpi::Rank& rank, ckpt::Coordinator& coordinator, TraceLog* trace)
      : ProtocolManagerBase(rank, coordinator, trace) {}

  [[nodiscard]] const char* name() const override { return "2pc"; }

  void pre_collective(const umpi::CommPtr& comm) override;
  void post_collective(const umpi::CommPtr& comm) override;
  void pre_nbc(const umpi::CommPtr& comm) override;
  void blocked_step(const std::function<bool()>& done, const ParkHooks* hooks,
                    int blocked_src_world) override;
  void blocked_finish(const ParkHooks* hooks) override;
  void poll() override;
  void at_finalize() override;

  void serialize(BinaryWriter& w) const override;
  void restore(BinaryReader& r) override;

 private:
  /// Park at a safe point (outside MPI) until a pending cycle resolves.
  void park_until_idle();

  /// Per-ggid count of collective instances this rank has started — the
  /// instance id agreed across members (collectives are ordered per group).
  std::map<Ggid, std::uint64_t> instance_counts_;

  // Current collective in flight (between pre and post).
  Ggid current_ggid_ = 0;
  std::uint64_t current_instance_ = 0;
  bool in_barrier_ = false;
  bool blocked_parked_ = false;
};

}  // namespace manatee::core
