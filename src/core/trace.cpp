#include "core/trace.hpp"

#include <sstream>

namespace manatee::core {

std::string describe_event(const TraceEvent& e) {
  std::ostringstream os;
  os << "t=" << e.when << " ";
  switch (e.kind) {
    case TraceEventKind::kCollectiveExecuted:
      os << "exec ggid=" << e.ggid << " seq=" << e.seq << " members=[";
      for (std::size_t i = 0; i < e.members.size(); ++i) {
        if (i != 0) os << ",";
        os << e.members[i];
      }
      os << "]";
      break;
    case TraceEventKind::kCkptRequestSeen:
      os << "request-seen cycle=" << e.cycle;
      break;
    case TraceEventKind::kImageWritten:
      os << "image-written cycle=" << e.cycle;
      break;
    case TraceEventKind::kTargetRaised:
      os << "target-raised ggid=" << e.ggid << " target=" << e.seq;
      break;
    case TraceEventKind::kTargetLearned:
      os << "target-learned ggid=" << e.ggid << " target=" << e.seq;
      break;
    case TraceEventKind::kParked:
      os << "parked at " << (e.site != nullptr ? e.site : "?");
      break;
    case TraceEventKind::kUnparked:
      os << "unparked at " << (e.site != nullptr ? e.site : "?");
      break;
  }
  return os.str();
}

std::string describe_tail(const std::vector<TraceEvent>& events, std::size_t n) {
  std::ostringstream os;
  const std::size_t start = events.size() > n ? events.size() - n : 0;
  for (std::size_t i = start; i < events.size(); ++i) {
    os << "  [" << i << "] " << describe_event(events[i]) << "\n";
  }
  return os.str();
}

}  // namespace manatee::core
