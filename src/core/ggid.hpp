// ggid.hpp — global group ids (paper §4.1).
//
// Communicator handles are local resources, so the CC algorithm keys its
// clocks on a *global* identity of the underlying group: an
// order-independent hash of the member set, in world ranks. By design,
// communicators that are MPI_SIMILAR (same member set, any order) share a
// ggid.
#pragma once

#include <cstdint>

#include "umpi/communicator.hpp"
#include "umpi/group.hpp"

namespace manatee::core {

using Ggid = std::uint64_t;

/// ggid of a group: order-independent hash of the world-rank member set.
[[nodiscard]] inline Ggid ggid_of(const umpi::Group& group) noexcept {
  return group.member_set_hash();
}

[[nodiscard]] inline Ggid ggid_of(const umpi::CommPtr& comm) noexcept {
  return comm->member_set_hash();
}

}  // namespace manatee::core
