#include "core/two_phase_commit.hpp"

#include "common/error.hpp"
#include "sched/scheduler.hpp"
#include "umpi/runtime.hpp"
#include "common/log.hpp"

namespace manatee::core {

void TpcManager::pre_collective(const umpi::CommPtr& comm) {
  const Ggid ggid = ggid_of(comm);
  const std::uint64_t instance = instance_counts_[ggid]++;
  current_ggid_ = ggid;
  current_instance_ = instance;
  in_barrier_ = true;
  coordinator_.tpc_enter(rank_.world_rank(), ggid, instance, comm->size());

  // The inserted barrier: a real MPI_Ibarrier on the application's own
  // communicator, driven by an MPI_Test loop. Always the software
  // algorithm: a cut taken while only some members have entered abandons
  // the barrier (re-executed at restart), which the in-switch offload
  // cannot survive — an entered member's contribution would sit in the
  // unit as a partially aggregated round at capture.
  auto barrier = rank_.ibarrier_software(comm);
  bool parked = false;
  while (!rank_.test(barrier)) {
    const auto token = rank_.store().token();
    const auto phase = coordinator_.phase();
    if (phase == ckpt::CkptPhase::kWrite) {
      perform_write_cycle();
      parked = false;
      continue;
    }
    if (phase == ckpt::CkptPhase::kDrain) {
      note_request_observed();
      if (trace_ != nullptr && !parked) {
        trace_->record_request_seen(coordinator_.completed_cycles() + 1);
      }
      coordinator_.report_tpc(rank_.world_rank(), true);
      parked = true;
    }
    if (rank_.test(barrier)) break;
    if (rank_.runtime().stop_requested()) throw JobStopping{};
    if (rank_.runtime().aborted()) {
      throw RuntimeFault("peer rank failed during 2PC barrier");
    }
    rank_.store().wait_changed(token);
  }
  // Barrier complete: about to execute the real collective (unsafe region;
  // tpc_execute also clears the parked flag at the coordinator).
  coordinator_.tpc_execute(rank_.world_rank(), ggid, instance);
  in_barrier_ = false;

  const std::uint64_t seq = instance + 1;
  if (trace_ != nullptr) {
    trace_->record_collective(ggid, seq, comm->group.members());
  }
}

void TpcManager::post_collective(const umpi::CommPtr& comm) {
  (void)comm;
  coordinator_.tpc_done(rank_.world_rank(), current_ggid_, current_instance_);
  if (coordinator_.phase() != ckpt::CkptPhase::kIdle) park_until_idle();
}

void TpcManager::pre_nbc(const umpi::CommPtr& comm) {
  (void)comm;
  throw CheckpointError(
      "2PC does not support non-blocking collective communication (use the "
      "CC algorithm, paper §4.3)");
}

void TpcManager::park_until_idle() {
  while (true) {
    const auto phase = coordinator_.phase();
    if (phase == ckpt::CkptPhase::kIdle) return;
    if (phase == ckpt::CkptPhase::kWrite) {
      perform_write_cycle();
      continue;
    }
    const auto token = rank_.store().token();
    note_request_observed();
    coordinator_.report_tpc(rank_.world_rank(), true);
    if (coordinator_.phase() != ckpt::CkptPhase::kDrain) continue;
    if (rank_.runtime().aborted()) {
      throw RuntimeFault("peer rank failed during 2PC drain");
    }
    rank_.store().wait_changed(token);
  }
}

void TpcManager::blocked_step(const std::function<bool()>& done,
                              const ParkHooks* hooks, int blocked_src_world) {
  (void)done;
  (void)blocked_src_world;  // 2PC parks anywhere outside MPI; no cascade
  const auto phase = coordinator_.phase();
  if (phase == ckpt::CkptPhase::kIdle) {
    if (blocked_parked_) {
      blocked_parked_ = false;
      if (hooks != nullptr && hooks->resume) hooks->resume();
    }
    return;
  }
  if (phase == ckpt::CkptPhase::kWrite) {
    perform_write_cycle();
    if (blocked_parked_) {
      blocked_parked_ = false;
      if (hooks != nullptr && hooks->resume) hooks->resume();
    }
    return;
  }
  // kDrain: any point outside MPI is safe for 2PC.
  note_request_observed();
  if (!blocked_parked_) {
    if (hooks != nullptr && hooks->suspend && !hooks->suspend()) return;
    blocked_parked_ = true;
  }
  coordinator_.report_tpc(rank_.world_rank(), true);
}

void TpcManager::blocked_finish(const ParkHooks* hooks) {
  (void)hooks;
  // Same unpark transaction as the CC manager: once the safe state is
  // declared, a parked rank whose wait completed concurrently must write
  // from the frozen state rather than resume past the cut.
  while (blocked_parked_) {
    if (coordinator_.phase() == ckpt::CkptPhase::kWrite) {
      perform_write_cycle();
      blocked_parked_ = false;
      break;
    }
    if (coordinator_.try_unpark(rank_.world_rank())) {
      blocked_parked_ = false;
      break;
    }
    // Poll loop with no blocking wait: yield so the peers this unpark
    // depends on can run under a cooperative fiber backend.
    sched::yield();
  }
}

void TpcManager::poll() {
  if (coordinator_.phase() != ckpt::CkptPhase::kIdle) park_until_idle();
}

void TpcManager::at_finalize() {
  coordinator_.report_done(rank_.world_rank());
  // Stay until the whole job is done AND no checkpoint cycle is pending —
  // a request that lands as ranks finish must still complete.
  while (!coordinator_.all_done() ||
         coordinator_.phase() != ckpt::CkptPhase::kIdle) {
    const auto phase = coordinator_.phase();
    if (phase == ckpt::CkptPhase::kWrite) {
      perform_write_cycle();
      continue;
    }
    const auto token = rank_.store().token();
    if (phase == ckpt::CkptPhase::kDrain) {
      coordinator_.report_tpc(rank_.world_rank(), true);
    }
    if (coordinator_.all_done() && coordinator_.phase() == ckpt::CkptPhase::kIdle) {
      return;
    }
    if (rank_.runtime().aborted()) return;
    rank_.store().wait_changed(token);
  }
}

void TpcManager::serialize(BinaryWriter& w) const {
  // A barrier loop abandoned by the checkpoint is re-executed at restart,
  // so the in-flight instance is not counted as started.
  auto counts = instance_counts_;
  if (in_barrier_) {
    auto it = counts.find(current_ggid_);
    MANATEE_CHECK(it != counts.end() && it->second > 0,
                  "2PC serialize: missing in-flight instance count");
    --it->second;
  }
  w.write_u64_map(counts);
}

void TpcManager::restore(BinaryReader& r) {
  instance_counts_ = r.read_u64_map();
}

}  // namespace manatee::core
