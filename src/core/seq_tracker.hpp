// seq_tracker.hpp — the collective clock itself: per-group sequence numbers
// and checkpoint-time target numbers (paper §4.1-4.2).
//
// SEQ[ggid]    — local count of collective operations this process has
//                initiated on the group (blocking collectives count at the
//                call; non-blocking collectives count at initiation, §4.3.1).
// TARGET[ggid] — during a drain, the global maximum of SEQ[ggid] over the
//                group's members. A process is at a safe point when
//                SEQ[g] == TARGET[g] for every group it belongs to.
#pragma once

#include <cstdint>
#include <map>

#include "core/ggid.hpp"

namespace manatee::core {

using SeqMap = std::map<std::uint64_t, std::uint64_t>;

class SeqTracker {
 public:
  /// Ensure a clock exists for `ggid` (communicator creation: SEQ=0).
  void note_group(Ggid ggid) { seq_.try_emplace(ggid, 0); }

  /// Increment the collective clock for `ggid`; returns the new value.
  std::uint64_t increment(Ggid ggid) { return ++seq_[ggid]; }

  [[nodiscard]] std::uint64_t seq(Ggid ggid) const {
    const auto it = seq_.find(ggid);
    return it == seq_.end() ? 0 : it->second;
  }

  [[nodiscard]] std::uint64_t target(Ggid ggid) const {
    const auto it = target_.find(ggid);
    return it == target_.end() ? 0 : it->second;
  }

  [[nodiscard]] const SeqMap& seq_map() const noexcept { return seq_; }
  [[nodiscard]] const SeqMap& target_map() const noexcept { return target_; }

  /// Merge externally learned targets (coordinator table or peer update),
  /// keeping the elementwise max. Returns true if any target grew. When
  /// `changed` is given, every (ggid, new target) that actually grew is
  /// appended — the drain trace records these transitions.
  bool merge_targets(const SeqMap& update, SeqMap* changed = nullptr) {
    bool grew = false;
    for (const auto& [g, n] : update) {
      auto& t = target_[g];
      if (n > t) {
        t = n;
        grew = true;
        if (changed != nullptr) (*changed)[g] = n;
      }
    }
    return grew;
  }

  bool merge_target(Ggid ggid, std::uint64_t value) {
    auto& t = target_[ggid];
    if (value > t) {
      t = value;
      return true;
    }
    return false;
  }

  /// Raise TARGET[g] to SEQ[g]; returns true if it actually rose (the
  /// "SEQ > TARGET during drain" branch of Algorithm 2 that triggers the
  /// SEND of new targets).
  bool raise_target_to_seq(Ggid ggid) { return merge_target(ggid, seq(ggid)); }

  /// Condition A' (paper §4.2.2): the process must keep executing iff some
  /// group *it belongs to* has SEQ < TARGET. Targets learned for foreign
  /// groups (the coordinator publishes the global table) are ignored: a
  /// process participates in a group iff it holds a clock for its ggid
  /// (created when the communicator became visible, SEQ=0).
  [[nodiscard]] bool targets_met() const {
    for (const auto& [g, t] : target_) {
      const auto it = seq_.find(g);
      if (it == seq_.end()) continue;  // not a member of this group
      if (it->second < t) return false;
    }
    return true;
  }

  /// Groups with unmet targets (diagnostics / trace).
  [[nodiscard]] SeqMap unmet() const {
    SeqMap out;
    for (const auto& [g, t] : target_) {
      const auto it = seq_.find(g);
      if (it != seq_.end() && it->second < t) out.emplace(g, t);
    }
    return out;
  }

  /// Drop all targets (drain cycle finished).
  void clear_targets() { target_.clear(); }

  /// Replace SEQ wholesale (restart).
  void restore_seq(SeqMap seq) { seq_ = std::move(seq); }

 private:
  SeqMap seq_;
  SeqMap target_;
};

}  // namespace manatee::core
