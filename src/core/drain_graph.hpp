// drain_graph.hpp — offline safe-state verifier.
//
// The paper models execution as a directed graph: each collective operation
// instance is a node (here identified by (ggid, seq)); each participating
// process contributes an incoming edge when it enters and an outgoing edge
// when it leaves (§4.2.2). A checkpoint state is safe iff
//   (1) every node visited by at least one process before its image was
//       written was visited by *all* participating processes, and
//   (2) no node beyond the checkpoint targets was visited (minimality —
//       execution stopped as early as the topological sort allows).
//
// This verifier replays recorded per-rank event traces through that model.
// It is implementation-independent: the integration and property tests run
// the *protocols* and then ask this oracle whether the state they froze
// was actually safe.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/trace.hpp"

namespace manatee::core {

struct DrainCheckResult {
  bool ok = true;
  std::string error;

  static DrainCheckResult failure(std::string message) {
    return DrainCheckResult{false, std::move(message)};
  }
};

class DrainGraph {
 public:
  using TargetMap = std::map<Ggid, std::uint64_t>;

  /// Build from one event vector per world rank. `forced_by_cycle` carries
  /// the targets the coordinator's p2p-aware cascade forced per checkpoint
  /// cycle (Coordinator::forced_by_cycle()); they are part of the cut
  /// definition, so minimality is checked against request-time targets
  /// merged with them.
  explicit DrainGraph(std::vector<std::vector<TraceEvent>> per_rank_events,
                      std::map<std::uint64_t, TargetMap> forced_by_cycle = {});

  /// Verify condition (1) for checkpoint cycle `cycle`: every node visited
  /// before the cycle's image writes is fully visited.
  [[nodiscard]] DrainCheckResult check_fully_visited(std::uint64_t cycle) const;

  /// Verify condition (2) for `cycle`: targets computed from each rank's
  /// request-observation point bound everything executed before the write.
  /// Only meaningful for the CC protocol.
  [[nodiscard]] DrainCheckResult check_minimality(std::uint64_t cycle) const;

  /// Both conditions.
  [[nodiscard]] DrainCheckResult check_safe_state(std::uint64_t cycle,
                                                  bool minimality) const;

  /// Number of distinct collective nodes in the whole trace.
  [[nodiscard]] std::size_t node_count() const;

  /// Highest checkpoint cycle for which every rank has a write marker.
  [[nodiscard]] std::uint64_t complete_cycles() const;

 private:
  /// Index of the ImageWritten(cycle) event for `rank`, or -1.
  [[nodiscard]] std::ptrdiff_t write_marker(int rank, std::uint64_t cycle) const;
  [[nodiscard]] std::ptrdiff_t request_marker(int rank, std::uint64_t cycle) const;

  std::vector<std::vector<TraceEvent>> events_;
  std::map<std::uint64_t, TargetMap> forced_by_cycle_;
};

}  // namespace manatee::core
