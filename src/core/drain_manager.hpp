// drain_manager.hpp — the strategy interface between the wrapper layer
// (split::Api) and a checkpoint drain protocol.
//
// Three implementations exist:
//   * NativeManager — no checkpointing, zero-cost hooks (the "Native" bars
//     of Figures 5-8);
//   * CcManager — the paper's collective-clock algorithm (§4);
//   * TpcManager — original MANA's two-phase-commit baseline (§2.2).
//
// The wrapper layer calls these hooks at exactly the sites MANA interposes:
// around every blocking collective, at non-blocking initiation, inside
// every blocking point-to-point/request wait loop, at explicit poll sites
// in long compute phases, and at finalize.
#pragma once

#include <cstdint>
#include <functional>

#include "common/serialize.hpp"
#include "umpi/communicator.hpp"
#include "umpi/rank.hpp"

namespace manatee::core {

/// Hooks a blocking operation provides so the manager can park the rank
/// *outside* the operation (e.g. cancel a posted receive before an image is
/// written, and re-arm it afterwards).
struct ParkHooks {
  /// Detach the in-progress operation from shared state so a checkpoint
  /// can be taken. Returns false if the operation completed concurrently
  /// (in which case the rank must not park and should re-check `done`).
  std::function<bool()> suspend;
  /// Re-arm the operation after an unpark or a completed checkpoint.
  std::function<void()> resume;
};

class DrainManager {
 public:
  virtual ~DrainManager() = default;

  /// Protocol name for reports ("native", "cc", "2pc").
  [[nodiscard]] virtual const char* name() const = 0;

  /// True when every hook is a no-op (native): the wrapper layer may skip
  /// blocked_step entirely and use targeted waits instead of generic
  /// wake-on-anything loops.
  [[nodiscard]] virtual bool passive() const { return false; }

  /// A communicator became visible to the upper half (creation or restart
  /// replay): initialize its collective clock (SEQ[ggid] = 0).
  virtual void note_comm(const umpi::CommPtr& comm) { (void)comm; }

  /// Around every *blocking* collective (and collective communicator-
  /// management operation). pre may park the rank (Algorithm 3 at wrapper
  /// entry); post may park it again at wrapper exit.
  virtual void pre_collective(const umpi::CommPtr& comm) { (void)comm; }
  virtual void post_collective(const umpi::CommPtr& comm) { (void)comm; }

  /// Before initiating a non-blocking collective (SEQ increments here,
  /// §4.3.1). Throws if the protocol does not support NBC (2PC).
  virtual void pre_nbc(const umpi::CommPtr& comm) { (void)comm; }
  /// Track an initiated non-blocking collective for the checkpoint-time
  /// Test-drain (§4.3.2).
  virtual void register_nbc(umpi::Request request) { (void)request; }

  /// One iteration's worth of drain participation inside a blocking wait
  /// loop (blocking recv, Wait, Waitall). The loop structure is:
  ///   while (!done()) { token; progress; blocked_step(done, hooks, src); wait }
  /// `blocked_src_world` is the world rank whose message the wait is for
  /// (Coordinator::kBlockedUnknown for wildcard receives, waitany, and NBC
  /// waits) — input to the CC drain's p2p-aware target cascade.
  /// Default: nothing (native).
  virtual void blocked_step(const std::function<bool()>& done,
                            const ParkHooks* hooks, int blocked_src_world) {
    (void)done;
    (void)hooks;
    (void)blocked_src_world;
  }

  /// Called when a blocking wait loop exits (its operation completed).
  /// Clears any park state the manager holds for the loop.
  virtual void blocked_finish(const ParkHooks* hooks) { (void)hooks; }

  /// Cheap checkpoint-opportunity hook for long compute loops and
  /// non-blocking call sites. Never parks under CC (see DESIGN.md §5 on
  /// liveness); may park under 2PC.
  virtual void poll() {}

  /// Application function finished; stay responsive (consume protocol
  /// traffic, participate in late checkpoints) until the whole job is done.
  virtual void at_finalize() {}

  /// Set the callback that captures and writes this rank's image. Invoked
  /// exactly once per checkpoint cycle, at the safe state.
  void set_write_fn(std::function<void()> fn) { write_fn_ = std::move(fn); }

  /// Out-of-band contribution at checkpoint-request time, called from the
  /// *requesting* thread (MANA's per-process DMTCP checkpoint thread can
  /// read the main thread's SEQ array even while it is blocked inside a
  /// collective — without this, a rank stuck in a pre-request collective
  /// could never contribute its clocks and the drain would deadlock).
  /// Must be thread-safe against the rank's own wrapper activity.
  virtual void post_initial_state(int world_rank) { (void)world_rank; }

  /// Persist / restore protocol state across checkpoint-restart.
  virtual void serialize(BinaryWriter& w) const { (void)w; }
  virtual void restore(BinaryReader& r) { (void)r; }

 protected:
  std::function<void()> write_fn_;
};

/// The no-checkpointing baseline.
class NativeManager final : public DrainManager {
 public:
  [[nodiscard]] const char* name() const override { return "native"; }
  [[nodiscard]] bool passive() const override { return true; }
};

}  // namespace manatee::core
