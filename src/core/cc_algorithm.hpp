// cc_algorithm.hpp — the Collective Clock (CC) algorithm (paper §4).
//
// Runtime behaviour (§4.2.1): each collective wrapper increments a local
// per-ggid sequence number — no network traffic, near-zero overhead.
//
// Checkpoint behaviour (§4.2.2-4.2.4): on a request, every rank posts its
// SEQ table; the coordinator publishes the per-ggid maxima as TARGETs
// (Algorithm 1). A rank keeps executing while any of its groups has
// SEQ < TARGET (Condition A'); when an execution pushes SEQ past a TARGET,
// the rank raises the target and SENDs it to the group's members over the
// out-of-band channel (Algorithm 2); parked ranks sit in
// Wait_for_new_targets consuming updates (Algorithm 3). Termination is
// detected by the coordinator via balanced update counts.
//
// Non-blocking extension (§4.3): SEQ increments at initiation; at the safe
// state every initiated-but-incomplete NBC is driven to completion with a
// Test loop before the image is written.
#pragma once

#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "core/protocol_base.hpp"
#include "core/seq_tracker.hpp"

namespace manatee::core {

class CcManager final : public ProtocolManagerBase {
 public:
  /// Tag for target-update messages on the world checkpoint channel (the
  /// paper's mana_updates_tag).
  static constexpr int kTagTargetUpdate = 0x7a11;

  CcManager(umpi::Rank& rank, ckpt::Coordinator& coordinator, TraceLog* trace)
      : ProtocolManagerBase(rank, coordinator, trace) {}

  [[nodiscard]] const char* name() const override { return "cc"; }

  void note_comm(const umpi::CommPtr& comm) override;
  void pre_collective(const umpi::CommPtr& comm) override;
  void post_collective(const umpi::CommPtr& comm) override;
  void pre_nbc(const umpi::CommPtr& comm) override;
  void register_nbc(umpi::Request request) override;
  void blocked_step(const std::function<bool()>& done, const ParkHooks* hooks,
                    int blocked_src_world) override;
  void blocked_finish(const ParkHooks* hooks) override;
  void poll() override;
  void at_finalize() override;

  void serialize(BinaryWriter& w) const override;
  void restore(BinaryReader& r) override;

  /// Thread-safe SEQ contribution from the requesting thread (the
  /// checkpoint-thread analogue; see DrainManager::post_initial_state).
  void post_initial_state(int world_rank) override;

  /// Post-run inspection hook for tests: callers read the tracker after
  /// Runtime::run has joined every rank, when no writer exists any more —
  /// the analysis cannot see that the program is single-threaded again.
  [[nodiscard]] const SeqTracker& clocks() const noexcept
      MANATEE_NO_THREAD_SAFETY_ANALYSIS {
    return clocks_;
  }
  [[nodiscard]] std::size_t pending_nbc_count() const noexcept {
    return pending_nbc_.size();
  }

 private:
  /// Algorithm 2's increment + conditional target raise + SEND.
  void advance_clock(const umpi::CommPtr& comm);
  /// Algorithm 3: park until some target is unmet or no checkpoint pends.
  /// `entry_comm` (may be null) is the communicator of the collective this
  /// rank is about to execute — advertised to the coordinator while parked
  /// so the p2p cascade can force that node if a peer is starved.
  void wait_for_new_targets(const umpi::CommPtr* entry_comm = nullptr);
  /// First-notice actions for a cycle: post SEQ to the coordinator.
  void ensure_request_seen();
  /// Drain coordinator table + peer updates into local TARGETs.
  void refresh_targets();
  /// Condition A' test under the SEQ lock (the rank thread races the
  /// requesting thread's post_initial_state snapshot).
  [[nodiscard]] bool targets_met_now() const MANATEE_EXCLUDES(seq_mutex_);
  /// Report drain status to the coordinator; `site` labels the wrapper
  /// site for the trace's park/unpark edges.
  void report(bool parked, const char* site = "?");
  void pre_write() override;   // §4.3.2 Test-drain of pending NBCs
  void post_cycle() override;  // reset per-cycle drain state

  /// Guards mutations and snapshots of the SEQ table: the table is written
  /// by the rank thread (wrapper increments) and read out-of-band by the
  /// requesting thread at checkpoint time. Uncontended in steady state —
  /// this lock is part of the modeled CC wrapper cost. Lock level 90: may
  /// be held across coordinator_.post_seq (level 80).
  mutable common::Mutex seq_mutex_;
  SeqTracker clocks_ MANATEE_GUARDED_BY(seq_mutex_);
  std::vector<umpi::Request> pending_nbc_;

  // per-cycle drain state
  std::uint64_t posted_cycle_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t seen_version_ = 0;
  bool blocked_parked_ = false;
  bool reported_parked_ = false;  ///< last reported state (trace edges)
  /// World rank this rank is blocked waiting on (p2p cascade input).
  int blocked_on_ = ckpt::Coordinator::kNotBlocked;
  /// Non-null while sitting in wait_for_new_targets at a collective entry.
  const umpi::CommPtr* entry_comm_ = nullptr;
};

}  // namespace manatee::core
