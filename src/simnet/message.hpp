// message.hpp — message envelopes and match patterns for the fabric.
//
// An Envelope is one point-to-point message in flight or queued at the
// receiver. Matching follows MPI semantics: a receive names
// (context, source|ANY, tag|ANY) and messages match in arrival order with
// per-(source,context) FIFO ordering (non-overtaking rule).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "simnet/payload.hpp"
#include "simnet/time.hpp"

namespace manatee::simnet {

/// Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
constexpr int kAnySource = -1;
constexpr int kAnyTag = -1;

/// Communication context: separates user point-to-point traffic, internal
/// collective traffic, and checkpoint-protocol traffic, per communicator.
/// (Real MPI implementations reserve distinct context ids the same way.)
using ContextId = std::uint64_t;

/// Traffic classes, for the per-class counters behind the paper's message
/// accounting (2PC's extra barrier traffic shows up as kCkptProtocol while
/// CC's steady state matches native).
enum class TrafficClass : int {
  kUserP2P = 0,      ///< application Send/Recv
  kCollective = 1,   ///< internal messages of collective algorithms
  kCkptProtocol = 2, ///< drain-protocol traffic (CC target updates, 2PC barriers)
  kControl = 3,      ///< coordinator control
};
constexpr int kTrafficClassCount = 4;

struct TrafficCounters {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

struct Envelope {
  ContextId context = 0;
  int src = 0;  ///< sender's rank within the communicator of `context`
  int tag = 0;
  /// Store-wide arrival order. Load-bearing under binned matching: it is
  /// the tie-breaker that keeps ANY_SOURCE receives and checkpoint
  /// snapshots in exact arrival order across (context, src) bins. Restart
  /// injection assigns *negative* sequence numbers so re-injected messages
  /// order in front of everything the fresh runtime delivered.
  std::int64_t seq = 0;
  SimTime arrival_ns = 0;  ///< virtual time at which the message lands
  PayloadBuffer payload;   ///< inline ≤64 B, pool-backed above that
};

/// An unexpected-queue envelope deep-copied out of the pool: what
/// checkpoint capture stores in the image and restart hands back to
/// MessageStore::inject. Owns its payload independently of any fabric.
struct CapturedEnvelope {
  ContextId context = 0;
  int src = 0;
  int tag = 0;
  std::int64_t seq = 0;
  SimTime arrival_ns = 0;
  std::vector<std::byte> payload;
};

struct MatchPattern {
  ContextId context = 0;
  int src = kAnySource;
  int tag = kAnyTag;

  [[nodiscard]] bool matches(const Envelope& e) const noexcept {
    return e.context == context && (src == kAnySource || e.src == src) &&
           (tag == kAnyTag || e.tag == tag);
  }
  [[nodiscard]] bool matches_tag(int tag_in) const noexcept {
    return tag == kAnyTag || tag_in == tag;
  }
};

/// Completion record for a posted receive. Lives inside the receiver's
/// request object; written exactly once, under the MessageStore lock.
/// `done` is an acquire/release flag: all other fields are written before
/// the store of `done`, so a reader that observes done==true may read the
/// rest without holding the store lock.
struct RecvResult {
  std::atomic<bool> done{false};
  bool truncated = false;  ///< payload larger than the posted buffer
  int src = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
  SimTime arrival_ns = 0;

  [[nodiscard]] bool is_done() const noexcept {
    return done.load(std::memory_order_acquire);
  }
};

}  // namespace manatee::simnet
