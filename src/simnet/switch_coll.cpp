#include "simnet/switch_coll.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "simnet/fabric.hpp"

namespace manatee::simnet {

SwitchUnit::SwitchUnit(Fabric* fabric, Limits limits)
    : fabric_(fabric), limits_(limits) {}

bool SwitchUnit::attach(ContextId coll_context,
                        const std::vector<int>& member_worlds) {
  common::MutexLock lock(mutex_);
  auto it = sessions_.find(coll_context);
  if (it != sessions_.end()) return it->second.admitted;

  // Admission is a pure function of (member list, limits): every member of
  // the communicator — and every re-execution after restart — computes the
  // same verdict, so the whole communicator agrees switch vs software
  // without extra agreement traffic.
  Session session;
  session.admitted = limits_.enabled && !member_worlds.empty() &&
                     static_cast<int>(member_worlds.size()) <=
                         limits_.max_members;
  session.member_worlds = member_worlds;
  const bool admitted = session.admitted;
  sessions_.emplace(coll_context, std::move(session));
  if (admitted) {
    ++counters_.sessions_attached;
  } else {
    ++counters_.sessions_rejected;
  }
  return admitted;
}

SimTime SwitchUnit::link_transfer_ns(std::size_t bytes) const {
  return fabric_->cost().transfer_ns(
      bytes, PathCost{1, limits_.rail_scale, /*same_node=*/false});
}

bool SwitchUnit::contribute(ContextId coll_context, int member, int round_tag,
                            std::span<const std::byte> payload,
                            bool has_payload, SimTime uplink_ns) {
  common::MutexLock lock(mutex_);
  auto it = sessions_.find(coll_context);
  MANATEE_CHECK(it != sessions_.end() && it->second.admitted,
                "switch contribution on an unregistered communicator");
  Session& session = it->second;
  const int members = static_cast<int>(session.member_worlds.size());
  MANATEE_CHECK(member >= 0 && member < members,
                "switch contribution from a rank outside the session");

  auto round_it = session.rounds.find(round_tag);
  if (round_it != session.rounds.end() && round_it->second.aborted) {
    // Tombstoned by a quiesce: peers already fell back to software for
    // this tag, so a late arrival must too — even after resume().
    ++counters_.contributions_rejected;
    return false;
  }
  if (quiesced_ || payload.size() > limits_.max_payload) {
    ++counters_.contributions_rejected;
    return false;
  }

  Round& round = session.rounds[round_tag];
  if (round.contributed.empty()) {
    round.contributed.assign(static_cast<std::size_t>(members), false);
    ++counters_.live_partial_rounds;
  }
  MANATEE_CHECK(!round.completed, "switch contribution to a completed round");
  MANATEE_CHECK(!round.contributed[static_cast<std::size_t>(member)],
                "duplicate switch contribution");
  round.contributed[static_cast<std::size_t>(member)] = true;
  ++round.contributions;
  if (uplink_ns > round.ready_ns) round.ready_ns = uplink_ns;
  if (has_payload) {
    MANATEE_CHECK(!round.has_payload, "two payload contributions in one round");
    round.has_payload = true;
    round.payload.assign(payload.begin(), payload.end());
  }
  if (round.contributions == members) {
    complete_round_locked(coll_context, session, round_tag, round);
  }
  return true;
}

void SwitchUnit::complete_round_locked(ContextId ctx, Session& session,
                                       int round_tag, Round& round) {
  // The unit folds contributions serially; the round result is ready one
  // ALU step per member after the last contribution lands.
  round.ready_ns += fabric_->cost().switch_aggregate_cost() *
                    static_cast<SimTime>(session.member_worlds.size());
  round.completed = true;
  ++counters_.rounds_completed;
  --counters_.live_partial_rounds;
  deliver_locked(ctx, session, round_tag, round, kSwitchComplete,
                 /*everyone=*/true);
  round.payload.clear();
  round.contributed.clear();
}

void SwitchUnit::abort_round_locked(ContextId ctx, Session& session,
                                    int round_tag, Round& round) {
  round.aborted = true;
  ++counters_.rounds_aborted;
  --counters_.live_partial_rounds;
  // Only already-contributed members are waiting on the unit; the rest are
  // rejected at contribution time and never post the downlink receive.
  deliver_locked(ctx, session, round_tag, round, kSwitchAbort,
                 /*everyone=*/false);
  round.payload.clear();
}

void SwitchUnit::deliver_locked(ContextId ctx, const Session& session,
                                int round_tag, const Round& round,
                                std::byte verdict, bool everyone) {
  std::vector<std::byte> reply;
  reply.reserve(1 + round.payload.size());
  reply.push_back(verdict);
  if (verdict == kSwitchComplete) {
    reply.insert(reply.end(), round.payload.begin(), round.payload.end());
  }
  const SimTime arrival = round.ready_ns + link_transfer_ns(reply.size());
  for (std::size_t i = 0; i < session.member_worlds.size(); ++i) {
    if (!everyone && !round.contributed[i]) continue;
    fabric_->store(session.member_worlds[i])
        .deliver_bytes(ctx, kInSwitchSource, round_tag, arrival, reply,
                       TrafficClass::kCollective);
  }
}

void SwitchUnit::quiesce() {
  common::MutexLock lock(mutex_);
  if (quiesced_) return;
  quiesced_ = true;
  counters_.quiesced = true;
  for (auto& [ctx, session] : sessions_) {
    for (auto& [tag, round] : session.rounds) {
      if (!round.completed && !round.aborted) {
        abort_round_locked(ctx, session, tag, round);
      }
    }
  }
}

void SwitchUnit::resume() {
  common::MutexLock lock(mutex_);
  quiesced_ = false;
  counters_.quiesced = false;
}

bool SwitchUnit::quiesced() const {
  common::MutexLock lock(mutex_);
  return quiesced_;
}

SwitchUnit::Counters SwitchUnit::counters() const {
  common::MutexLock lock(mutex_);
  return counters_;
}

std::vector<std::byte> SwitchUnit::capture() const {
  const Counters c = counters();
  manatee::BinaryWriter w;
  w.write_u64(c.sessions_attached);
  w.write_u64(c.sessions_rejected);
  w.write_u64(c.rounds_completed);
  w.write_u64(c.rounds_aborted);
  w.write_u64(c.contributions_rejected);
  w.write_u64(c.live_partial_rounds);
  w.write_u64(c.quiesced ? 1 : 0);
  return w.bytes();
}

SwitchUnit::Counters SwitchUnit::parse_capture(std::span<const std::byte> blob) {
  manatee::BinaryReader r(blob);
  Counters c;
  c.sessions_attached = r.read_u64();
  c.sessions_rejected = r.read_u64();
  c.rounds_completed = r.read_u64();
  c.rounds_aborted = r.read_u64();
  c.contributions_rejected = r.read_u64();
  c.live_partial_rounds = r.read_u64();
  c.quiesced = r.read_u64() != 0;
  return c;
}

}  // namespace manatee::simnet
