// switch_coll.hpp — the simulated in-switch collective aggregation unit.
//
// Models the in-network barrier/broadcast offload of switch ASICs (the
// OMPI switch_barrier / gba_barrier component family): a communicator is
// registered with the unit once (control plane), after which one collective
// round costs each member a single NIC round trip — contribute up to the
// switch, receive the aggregated verdict back — instead of a log(p) software
// message schedule. The unit is part of the lower half (owned by the
// Fabric): restart builds a fresh one and sessions re-register lazily.
//
// Drain/checkpoint safety (DESIGN.md §11): switch-resident state is the
// per-round partial contribution count. Two coordinator strategies:
//
//   * cut-through (default): the unit keeps serving during the drain; the
//     CC target cut forces every member of an entered round through it, so
//     partial aggregations complete (and their completion envelopes are
//     consumed) before the safe state — live_partial_rounds == 0 at write.
//   * quiesce: quiesce() freezes the unit at drain start. Partial rounds
//     are aborted — already-contributed members receive an abort envelope,
//     later contributors are rejected — so every member of the round falls
//     back to the software algorithm under the same tag, deterministically.
//     Aborted rounds stay tombstoned past resume(): a member that shows up
//     only after the drain must also take the software path, or it would
//     wait on peers that already completed in software.
//
// Either way the unit's counters are captured into the checkpoint image
// (ckpt blob "engine/switch") and verified at restore: a safe state never
// contains a partially aggregated round.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "simnet/message.hpp"
#include "simnet/time.hpp"

namespace manatee::simnet {

class Fabric;

/// Envelope `src` of unit-originated completion/abort messages — outside
/// the communicator rank space, so it never collides with the software
/// algorithms' member-to-member traffic on the same (context, tag).
constexpr int kInSwitchSource = -2;

/// First payload byte of every downlink envelope.
constexpr std::byte kSwitchComplete{0x5A};
constexpr std::byte kSwitchAbort{0xA5};

class SwitchUnit {
 public:
  struct Limits {
    bool enabled = false;
    int max_members = 4096;
    std::size_t max_payload = 1024;
    double rail_scale = 1.0;  ///< inter-node bw_scale of the NIC↔switch link
  };

  SwitchUnit(Fabric* fabric, Limits limits);

  /// Control-plane registration of one communicator (keyed by its
  /// collective-channel context). Every member calls it before its first
  /// switch round; the first call computes the admission verdict as a pure
  /// function of the member list and the unit limits and records it, so
  /// later calls — any member, any run — replay the same verdict.
  /// `member_worlds[i]` is the world rank of communicator rank i.
  bool attach(ContextId coll_context, const std::vector<int>& member_worlds);

  /// Wire time of one NIC↔switch leg for `bytes` (uplink and downlink are
  /// symmetric single inter-node hops).
  [[nodiscard]] SimTime link_transfer_ns(std::size_t bytes) const;

  /// Aggregation-buffer payload cap (immutable after construction). Callers
  /// whose round carries a payload must check it *before* contributing,
  /// against a size every member knows: a contribution-time rejection only
  /// reaches the rejected member, so the in/out-of-switch decision has to
  /// be convergent up front.
  [[nodiscard]] std::size_t max_payload() const noexcept {
    return limits_.max_payload;
  }

  /// Data path: communicator rank `member` contributes to round `round_tag`
  /// arriving at the unit at `uplink_ns`. `has_payload` marks the root
  /// contribution of a broadcast round (at most one per round). When the
  /// last member arrives, the unit delivers one downlink envelope per
  /// member — kSwitchComplete followed by the round payload — through the
  /// normal fabric stores, so targeted waits, drain capture, and restart
  /// injection see ordinary kColl traffic.
  ///
  /// Returns false when the round cannot be served in-switch (unit
  /// quiesced, round previously aborted, payload over the limit): the
  /// caller must run the software algorithm for this round instead.
  bool contribute(ContextId coll_context, int member, int round_tag,
                  std::span<const std::byte> payload, bool has_payload,
                  SimTime uplink_ns);

  /// Drain control (checkpoint coordinator). quiesce() freezes the unit
  /// and aborts partial rounds; resume() re-enables it after the cycle.
  void quiesce();
  void resume();
  [[nodiscard]] bool quiesced() const;

  struct Counters {
    std::uint64_t sessions_attached = 0;
    std::uint64_t sessions_rejected = 0;
    std::uint64_t rounds_completed = 0;
    std::uint64_t rounds_aborted = 0;
    std::uint64_t contributions_rejected = 0;
    std::uint64_t live_partial_rounds = 0;
    bool quiesced = false;
  };
  [[nodiscard]] Counters counters() const;

  /// Serialized counters for the checkpoint image ("engine/switch").
  [[nodiscard]] std::vector<std::byte> capture() const;
  [[nodiscard]] static Counters parse_capture(std::span<const std::byte> blob);

 private:
  struct Round {
    int contributions = 0;
    bool has_payload = false;
    bool completed = false;
    bool aborted = false;
    SimTime ready_ns = 0;  ///< max uplink arrival over contributions
    std::vector<bool> contributed;
    std::vector<std::byte> payload;
  };

  struct Session {
    bool admitted = false;
    std::vector<int> member_worlds;
    std::map<int, Round> rounds;  ///< completed/aborted stay as tombstones
  };

  void complete_round_locked(ContextId ctx, Session& session, int round_tag,
                             Round& round) MANATEE_REQUIRES(mutex_);
  void abort_round_locked(ContextId ctx, Session& session, int round_tag,
                          Round& round) MANATEE_REQUIRES(mutex_);
  void deliver_locked(ContextId ctx, const Session& session, int round_tag,
                      const Round& round, std::byte verdict, bool everyone)
      MANATEE_REQUIRES(mutex_);

  Fabric* fabric_;
  Limits limits_;

  /// Lock level 70 (scripts/lock_order.json): held across downlink
  /// delivery into the MessageStores (level 60); the coordinator (level
  /// 80) calls quiesce()/resume() under its own mutex. Never acquired
  /// with a store or pool lock held.
  mutable common::Mutex mutex_;
  bool quiesced_ MANATEE_GUARDED_BY(mutex_) = false;
  std::map<ContextId, Session> sessions_ MANATEE_GUARDED_BY(mutex_);
  Counters counters_ MANATEE_GUARDED_BY(mutex_);
};

}  // namespace manatee::simnet
