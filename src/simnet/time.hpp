// time.hpp — virtual-time base types.
//
// MANATEE measures runtime overhead in *virtual time*: a deterministic
// logical clock advanced by an explicit cost model, instead of noisy
// wall-clock time. SimTime is integer nanoseconds so repeated runs are
// bit-identical (no floating-point drift).
#pragma once

#include <cstdint>

namespace manatee::simnet {

/// Virtual time in nanoseconds.
using SimTime = std::int64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000;
constexpr SimTime kMillisecond = 1000 * 1000;
constexpr SimTime kSecond = 1000 * 1000 * 1000;

/// Convert virtual nanoseconds to floating-point seconds for reporting.
constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / 1e9;
}

/// Convert virtual nanoseconds to floating-point microseconds for reporting.
constexpr double to_micros(SimTime t) noexcept {
  return static_cast<double>(t) / 1e3;
}

}  // namespace manatee::simnet
