#include "simnet/mailbox.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>

namespace manatee::simnet {

namespace {
std::atomic<long> g_wait_timeout_ms{60'000};

/// Stack bound of the wake-path batch buffers. sched::Waiter::notify_batch
/// groups and chunks internally; this only caps how many pointers a wake
/// pass accumulates before flushing.
constexpr std::size_t kWakeBatch = 32;
}  // namespace

void MessageStore::set_wait_timeout_ms(long ms) noexcept {
  g_wait_timeout_ms.store(ms, std::memory_order_relaxed);
}

long MessageStore::wait_timeout_ms() noexcept {
  return g_wait_timeout_ms.load(std::memory_order_relaxed);
}

void MessageStore::complete_posted(const Posted& p, int src, int tag,
                                   SimTime arrival_ns,
                                   std::span<const std::byte> payload) {
  const std::size_t n = payload.size();
  const std::size_t copied = std::min(n, p.capacity);
  if (copied > 0) std::memcpy(p.dest, payload.data(), copied);
  p.result->truncated = n > p.capacity;
  p.result->src = src;
  p.result->tag = tag;
  p.result->bytes = copied;
  p.result->arrival_ns = arrival_ns;
  p.result->done.store(true, std::memory_order_release);
}

namespace {
/// Sorted-vector lookup shared by find_context/context_for.
template <typename Contexts>
auto context_lower_bound(Contexts& contexts, ContextId context) {
  return std::lower_bound(
      contexts.begin(), contexts.end(), context,
      [](const auto& entry, ContextId c) { return entry.first < c; });
}
}  // namespace

MessageStore::ContextBins* MessageStore::find_context(ContextId context) {
  if (cached_context_ != nullptr && context == cached_context_id_) {
    return cached_context_;
  }
  const auto it = context_lower_bound(contexts_, context);
  if (it == contexts_.end() || it->first != context) return nullptr;
  cached_context_id_ = context;
  cached_context_ = it->second.get();
  return cached_context_;
}

MessageStore::ContextBins& MessageStore::context_for(ContextId context) {
  if (cached_context_ != nullptr && context == cached_context_id_) {
    return *cached_context_;
  }
  auto it = context_lower_bound(contexts_, context);
  if (it == contexts_.end() || it->first != context) {
    it = contexts_.emplace(it, context, std::make_unique<ContextBins>());
  }
  cached_context_id_ = context;
  cached_context_ = it->second.get();
  return *cached_context_;
}

MessageStore::Bin& MessageStore::bin_for(ContextId context, int src) {
  return context_for(context).get(src);
}

bool MessageStore::pop_matching_posted(ContextId context, int src, int tag,
                                       Posted* out) {
  ContextBins* cbp = find_context(context);
  if (cbp == nullptr) return false;
  ContextBins& cb = *cbp;

  std::vector<Posted>* bin_list = nullptr;
  std::size_t bin_idx = 0;
  if (Bin* bin = cb.find(src)) {
    auto& posted = bin->posted;
    for (std::size_t i = 0; i < posted.size(); ++i) {
      if (posted[i].pattern.matches_tag(tag)) {
        bin_list = &posted;
        bin_idx = i;
        break;
      }
    }
  }

  std::vector<Posted>* wild_list = nullptr;
  std::size_t wild_idx = 0;
  for (std::size_t i = 0; i < cb.wildcard.size(); ++i) {
    if (cb.wildcard[i].pattern.matches_tag(tag)) {
      wild_list = &cb.wildcard;
      wild_idx = i;
      break;
    }
  }

  std::vector<Posted>* list = bin_list;
  std::size_t idx = bin_idx;
  if (wild_list != nullptr &&
      (list == nullptr ||
       cb.wildcard[wild_idx].post_seq < (*list)[idx].post_seq)) {
    list = wild_list;
    idx = wild_idx;
  }
  if (list == nullptr) return false;
  *out = (*list)[idx];
  list->erase(list->begin() + static_cast<std::ptrdiff_t>(idx));
  --posted_count_;
  return true;
}

bool MessageStore::find_unexpected(const MatchPattern& pattern, Bin** bin_out,
                                   std::size_t* index_out) {
  ContextBins* cbp = find_context(pattern.context);
  if (cbp == nullptr) return false;
  ContextBins& cb = *cbp;

  Bin* best_bin = nullptr;
  std::size_t best_idx = 0;
  std::int64_t best_seq = 0;
  auto consider = [&](Bin& bin) {
    for (std::size_t i = 0; i < bin.unexpected.size(); ++i) {
      const Envelope& env = bin.unexpected[i];
      if (!pattern.matches_tag(env.tag)) continue;
      if (best_bin == nullptr || env.seq < best_seq) {
        best_bin = &bin;
        best_idx = i;
        best_seq = env.seq;
      }
      break;  // bin is FIFO: the first tag match is this bin's candidate
    }
  };

  if (pattern.src != kAnySource) {
    Bin* bin = cb.find(pattern.src);
    if (bin == nullptr) return false;
    consider(*bin);
  } else {
    for (auto& [src, bin] : cb.by_src) consider(*bin);
  }
  if (best_bin == nullptr) return false;
  *bin_out = best_bin;
  *index_out = best_idx;
  return true;
}

// ---- wakeup targeting -------------------------------------------------------

// Each wake pass accumulates the matching parkers and hands the scheduler
// whole runs (sched::Waiter::notify_batch): m wakeups cost O(m / chunk)
// scheduler lock rounds instead of m. At 64k ranks a coordinator notify()
// satisfies tens of thousands of parked ranks in one sweep.
namespace {
class WakeBatch {
 public:
  ~WakeBatch() { flush(); }
  void add(sched::Waiter* parker) {
    batch_[count_++] = parker;
    if (count_ == kWakeBatch) flush();
  }

 private:
  void flush() {
    if (count_ > 0) sched::Waiter::notify_batch(batch_, count_);
    count_ = 0;
  }
  sched::Waiter* batch_[kWakeBatch];
  std::size_t count_ = 0;
};
}  // namespace

void MessageStore::wake_all_locked() {
  WakeBatch batch;
  for (Waiter* w : waiters_) batch.add(&w->parker);
  for (const Watch& w : watches_) batch.add(w.parker);
}

void MessageStore::wake_for_result_locked(const RecvResult* result) {
  WakeBatch batch;
  for (Waiter* w : waiters_) {
    if (w->want == Waiter::Want::kAny ||
        (w->want == Waiter::Want::kResult && w->result == result)) {
      batch.add(&w->parker);
    }
  }
  for (const Watch& w : watches_) {
    if (w.result == result) batch.add(w.parker);
  }
}

void MessageStore::wake_for_unexpected_locked(const Envelope& env) {
  WakeBatch batch;
  for (Waiter* w : waiters_) {
    if (w->want == Waiter::Want::kAny ||
        (w->want == Waiter::Want::kProbe && w->pattern->matches(env))) {
      batch.add(&w->parker);
    }
  }
}

std::string MessageStore::wait_diagnostics_locked(const char* what) const {
  return std::string("MessageStore::") + what +
         " watchdog expired — likely distributed deadlock (posted=" +
         std::to_string(posted_count_) +
         ", unexpected=" + std::to_string(unexpected_count_) + ")";
}

void MessageStore::wait_on_locked(Waiter& waiter,
                                  common::FunctionRef<bool()> pred,
                                  const char* what) {
  if (pred()) return;
  waiters_.push_back(&waiter);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(wait_timeout_ms());
  try {
    while (!pred()) {
      // park_until blocks on a CV (thread ranks) or suspends the calling
      // fiber (fiber ranks); false means the watchdog deadline passed.
      if (!waiter.parker.park_until(mutex_, deadline) && !pred()) {
        throw RuntimeFault(wait_diagnostics_locked(what));
      }
    }
  } catch (...) {
    std::erase(waiters_, &waiter);
    throw;
  }
  std::erase(waiters_, &waiter);
}

// ---- delivery ---------------------------------------------------------------

void MessageStore::deliver_locked(ContextId context, int src, int tag,
                                  SimTime arrival_ns,
                                  std::span<const std::byte> payload,
                                  TrafficClass traffic, Envelope* staged) {
  const std::int64_t seq = next_seq_++;
  auto& counters = traffic_[static_cast<std::size_t>(traffic)];
  counters.messages.fetch_add(1, std::memory_order_relaxed);
  counters.bytes.fetch_add(payload.size(), std::memory_order_relaxed);

  Posted p;
  if (pop_matching_posted(context, src, tag, &p)) {
    // The zero-copy eager path: sender buffer → receive buffer, one memcpy,
    // no envelope.
    complete_posted(p, src, tag, arrival_ns, payload);
    ++eager_completions_;
    wake_for_result_locked(p.result);
  } else {
    Envelope env;
    if (staged != nullptr) {
      env = std::move(*staged);
    } else {
      env.context = context;
      env.src = src;
      env.tag = tag;
      env.arrival_ns = arrival_ns;
      env.payload.assign(pool_, payload);
    }
    env.seq = seq;
    wake_for_unexpected_locked(env);
    bin_for(context, src).unexpected.push_back(std::move(env));
    ++unexpected_count_;
  }
  delivered_bytes_ += payload.size();
  ++delivered_messages_;
}

void MessageStore::deliver(Envelope&& env, TrafficClass traffic) {
  MANATEE_REQUIRE(env.src != kAnySource,
                  "delivered messages need a concrete source rank");
  common::MutexLock lock(mutex_);
  deliver_locked(env.context, env.src, env.tag, env.arrival_ns, env.payload,
                 traffic, &env);
}

void MessageStore::deliver_bytes(ContextId context, int src, int tag,
                                 SimTime arrival_ns,
                                 std::span<const std::byte> payload,
                                 TrafficClass traffic) {
  MANATEE_REQUIRE(src != kAnySource,
                  "delivered messages need a concrete source rank");
  common::MutexLock lock(mutex_);
  deliver_locked(context, src, tag, arrival_ns, payload, traffic, nullptr);
}

// ---- receives ---------------------------------------------------------------

bool MessageStore::try_complete_from_unexpected_locked(
    const MatchPattern& pattern, std::byte* dest, std::size_t capacity,
    RecvResult* result) {
  Bin* bin = nullptr;
  std::size_t idx = 0;
  if (!find_unexpected(pattern, &bin, &idx)) return false;
  const Envelope env = bin->unexpected.remove(idx);
  const Posted p{pattern, dest, capacity, result, 0};
  complete_posted(p, env.src, env.tag, env.arrival_ns, env.payload);
  --unexpected_count_;
  return true;
}

void MessageStore::post_recv(const MatchPattern& pattern, std::byte* dest,
                             std::size_t capacity, RecvResult* result) {
  MANATEE_REQUIRE(result != nullptr, "post_recv requires a result record");
  common::MutexLock lock(mutex_);
  if (try_complete_from_unexpected_locked(pattern, dest, capacity, result)) {
    return;
  }
  const Posted p{pattern, dest, capacity, result, next_post_seq_++};
  ContextBins& cb = context_for(pattern.context);
  if (pattern.src == kAnySource) {
    cb.wildcard.push_back(p);
  } else {
    cb.get(pattern.src).posted.push_back(p);
  }
  ++posted_count_;
}

bool MessageStore::cancel_recv(const RecvResult* result) {
  common::MutexLock lock(mutex_);
  auto scan = [&](std::vector<Posted>& list) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].result == result) {
        list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
        --posted_count_;
        return true;
      }
    }
    return false;
  };
  for (auto& [context, cb] : contexts_) {
    if (scan(cb->wildcard)) return true;
    for (auto& [src, bin] : cb->by_src) {
      if (scan(bin->posted)) return true;
    }
  }
  return false;
}

std::optional<ProbeInfo> MessageStore::iprobe(const MatchPattern& pattern) {
  common::MutexLock lock(mutex_);
  Bin* bin = nullptr;
  std::size_t idx = 0;
  if (!find_unexpected(pattern, &bin, &idx)) return std::nullopt;
  const Envelope& env = bin->unexpected[idx];
  return ProbeInfo{env.src, env.tag, env.payload.size(), env.arrival_ns};
}

bool MessageStore::try_recv_unexpected(const MatchPattern& pattern,
                                       std::byte* dest, std::size_t capacity,
                                       RecvResult* result) {
  MANATEE_REQUIRE(result != nullptr, "try_recv_unexpected requires a result");
  common::MutexLock lock(mutex_);
  return try_complete_from_unexpected_locked(pattern, dest, capacity, result);
}

// ---- blocking primitives ----------------------------------------------------

void MessageStore::wait(common::FunctionRef<bool()> pred) {
  common::MutexLock lock(mutex_);
  Waiter waiter;
  wait_on_locked(waiter, pred, "wait");
}

void MessageStore::wait_recv(const RecvResult& result,
                             common::FunctionRef<bool()> interrupt) {
  common::MutexLock lock(mutex_);
  Waiter waiter;
  waiter.want = Waiter::Want::kResult;
  waiter.result = &result;
  wait_on_locked(waiter, [&] { return result.is_done() || interrupt(); },
      "wait_recv");
}

std::optional<ProbeInfo> MessageStore::wait_probe(
    const MatchPattern& pattern, common::FunctionRef<bool()> interrupt) {
  common::MutexLock lock(mutex_);
  Waiter waiter;
  waiter.want = Waiter::Want::kProbe;
  waiter.pattern = &pattern;
  std::optional<ProbeInfo> found;
  wait_on_locked(waiter,
      [&] {
        mutex_.assert_held();  // preds run under the store lock
        Bin* bin = nullptr;
        std::size_t idx = 0;
        if (find_unexpected(pattern, &bin, &idx)) {
          const Envelope& env = bin->unexpected[idx];
          found = ProbeInfo{env.src, env.tag, env.payload.size(),
                            env.arrival_ns};
          return true;
        }
        return interrupt();
      },
      "wait_probe");
  return found;
}

bool MessageStore::watch_recv(const RecvResult* result, sched::Waiter* parker) {
  common::MutexLock lock(mutex_);
  for (Watch& w : watches_) {
    if (w.parker == parker) {
      w.result = result;
      return result->is_done();
    }
  }
  watches_.push_back(Watch{result, parker});
  // Checked under the lock AFTER registering: a delivery completing
  // `result` either happened before this critical section (visible here)
  // or will run after it and notify the watch.
  return result->is_done();
}

void MessageStore::unwatch(sched::Waiter* parker) {
  common::MutexLock lock(mutex_);
  std::erase_if(watches_, [&](const Watch& w) { return w.parker == parker; });
}

void MessageStore::notify() {
  common::MutexLock lock(mutex_);
  wake_all_locked();
  ++generation_;
}

void MessageStore::with_delivery_lock(common::FunctionRef<void()> fn) {
  common::MutexLock lock(mutex_);
  fn();
}

MessageStore::WakeToken MessageStore::token() const {
  common::MutexLock lock(mutex_);
  return WakeToken{delivered_messages_, generation_};
}

void MessageStore::wait_changed(const WakeToken& since) {
  common::MutexLock lock(mutex_);
  Waiter waiter;
  wait_on_locked(waiter,
      [&] {
        mutex_.assert_held();  // preds run under the store lock
        return delivered_messages_ != since.deliveries ||
               generation_ != since.generation;
      },
      "wait_changed");
}

// ---- checkpoint support -----------------------------------------------------

std::vector<CapturedEnvelope> MessageStore::snapshot_unexpected(
    common::FunctionRef<bool(const Envelope&)> keep) const {
  common::MutexLock lock(mutex_);
  std::vector<CapturedEnvelope> out;
  for (const auto& [context, cb] : contexts_) {
    for (const auto& [src, bin] : cb->by_src) {
      for (std::size_t i = 0; i < bin->unexpected.size(); ++i) {
        const Envelope& env = bin->unexpected[i];
        if (!keep(env)) continue;
        CapturedEnvelope c;
        c.context = env.context;
        c.src = env.src;
        c.tag = env.tag;
        c.seq = env.seq;
        c.arrival_ns = env.arrival_ns;
        c.payload = env.payload.to_vector();
        out.push_back(std::move(c));
      }
    }
  }
  // Bins hold disjoint slices of one arrival order; seq restores it.
  std::sort(out.begin(), out.end(),
            [](const CapturedEnvelope& a, const CapturedEnvelope& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::size_t MessageStore::count_unexpected(
    common::FunctionRef<bool(const Envelope&)> keep) const {
  common::MutexLock lock(mutex_);
  std::size_t n = 0;
  for (const auto& [context, cb] : contexts_) {
    for (const auto& [src, bin] : cb->by_src) {
      for (std::size_t i = 0; i < bin->unexpected.size(); ++i) {
        if (keep(bin->unexpected[i])) ++n;
      }
    }
  }
  return n;
}

void MessageStore::inject(std::vector<CapturedEnvelope> messages) {
  common::MutexLock lock(mutex_);
  // Injected messages were in flight at the checkpoint cut, so they are
  // causally OLDER than anything the fresh runtime has delivered: a peer
  // may already be replaying and its post-cut sends may have arrived before
  // this rank got around to re-injecting its saved queue. To preserve MPI's
  // non-overtaking order across the restart boundary, injected envelopes
  // match already-posted receives first and otherwise line up IN FRONT of
  // the newer unexpected envelopes (negative seq), keeping their saved order.
  const auto k = static_cast<std::int64_t>(messages.size());
  const std::int64_t base = next_front_seq_ - k + 1;
  next_front_seq_ -= k;

  std::vector<Envelope> leftover;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    CapturedEnvelope& m = messages[i];
    Posted p;
    if (pop_matching_posted(m.context, m.src, m.tag, &p)) {
      complete_posted(p, m.src, m.tag, m.arrival_ns, m.payload);
      continue;
    }
    Envelope env;
    env.context = m.context;
    env.src = m.src;
    env.tag = m.tag;
    env.seq = base + static_cast<std::int64_t>(i);
    env.arrival_ns = m.arrival_ns;
    env.payload.assign(pool_, m.payload);
    leftover.push_back(std::move(env));
  }
  // Reverse insertion at each bin's front preserves the saved order of the
  // leftovers within every bin.
  for (auto it = leftover.rbegin(); it != leftover.rend(); ++it) {
    Bin& bin = bin_for(it->context, it->src);
    bin.unexpected.push_front(std::move(*it));
    ++unexpected_count_;
  }
  wake_all_locked();  // like notify(): preds may now hold
  ++generation_;
}

// ---- stats ------------------------------------------------------------------

std::uint64_t MessageStore::delivered_messages() const {
  common::MutexLock lock(mutex_);
  return delivered_messages_;
}

std::uint64_t MessageStore::delivered_bytes() const {
  common::MutexLock lock(mutex_);
  return delivered_bytes_;
}

TrafficCounters MessageStore::traffic(TrafficClass traffic) const {
  const auto& c = traffic_[static_cast<std::size_t>(traffic)];
  return TrafficCounters{c.messages.load(std::memory_order_relaxed),
                         c.bytes.load(std::memory_order_relaxed)};
}

std::uint64_t MessageStore::eager_completions() const {
  common::MutexLock lock(mutex_);
  return eager_completions_;
}

std::string MessageStore::wait_diagnostics(const char* what) const {
  common::MutexLock lock(mutex_);
  return wait_diagnostics_locked(what);
}

}  // namespace manatee::simnet
