#include "simnet/mailbox.hpp"

#include <atomic>
#include <chrono>
#include <cstring>

namespace manatee::simnet {

namespace {
std::atomic<long> g_wait_timeout_ms{60'000};
}  // namespace

void MessageStore::set_wait_timeout_ms(long ms) noexcept {
  g_wait_timeout_ms.store(ms, std::memory_order_relaxed);
}

long MessageStore::wait_timeout_ms() noexcept {
  return g_wait_timeout_ms.load(std::memory_order_relaxed);
}

void MessageStore::complete(const Posted& p, Envelope& env) {
  const std::size_t n = env.payload.size();
  const std::size_t copied = std::min(n, p.capacity);
  if (copied > 0) std::memcpy(p.dest, env.payload.data(), copied);
  p.result->truncated = n > p.capacity;
  p.result->src = env.src;
  p.result->tag = env.tag;
  p.result->bytes = copied;
  p.result->arrival_ns = env.arrival_ns;
  p.result->done.store(true, std::memory_order_release);
}

void MessageStore::deliver(Envelope&& env) {
  std::lock_guard lock(mutex_);
  env.seq = next_seq_++;
  ++delivered_messages_;
  delivered_bytes_ += env.payload.size();
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (it->pattern.matches(env)) {
      complete(*it, env);
      posted_.erase(it);
      cv_.notify_all();
      return;
    }
  }
  unexpected_.push_back(std::move(env));
  cv_.notify_all();
}

void MessageStore::post_recv(const MatchPattern& pattern, std::byte* dest,
                             std::size_t capacity, RecvResult* result) {
  MANATEE_REQUIRE(result != nullptr, "post_recv requires a result record");
  std::lock_guard lock(mutex_);
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (pattern.matches(*it)) {
      Posted p{pattern, dest, capacity, result};
      complete(p, *it);
      unexpected_.erase(it);
      cv_.notify_all();
      return;
    }
  }
  posted_.push_back(Posted{pattern, dest, capacity, result});
}

bool MessageStore::cancel_recv(const RecvResult* result) {
  std::lock_guard lock(mutex_);
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (it->result == result) {
      posted_.erase(it);
      return true;
    }
  }
  return false;
}

std::optional<ProbeInfo> MessageStore::iprobe(const MatchPattern& pattern) {
  std::lock_guard lock(mutex_);
  for (const auto& env : unexpected_) {
    if (pattern.matches(env)) {
      return ProbeInfo{env.src, env.tag, env.payload.size(), env.arrival_ns};
    }
  }
  return std::nullopt;
}

bool MessageStore::try_recv_unexpected(const MatchPattern& pattern,
                                       std::byte* dest, std::size_t capacity,
                                       RecvResult* result) {
  MANATEE_REQUIRE(result != nullptr, "try_recv_unexpected requires a result");
  std::lock_guard lock(mutex_);
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (pattern.matches(*it)) {
      const Posted p{pattern, dest, capacity, result};
      complete(p, *it);
      unexpected_.erase(it);
      return true;
    }
  }
  return false;
}

void MessageStore::wait(const std::function<bool()>& pred) {
  std::unique_lock lock(mutex_);
  const auto timeout = std::chrono::milliseconds(wait_timeout_ms());
  if (!cv_.wait_for(lock, timeout, pred)) {
    throw RuntimeFault(
        "MessageStore::wait watchdog expired — likely distributed deadlock "
        "(posted=" +
        std::to_string(posted_.size()) +
        ", unexpected=" + std::to_string(unexpected_.size()) + ")");
  }
}

void MessageStore::notify() {
  std::lock_guard lock(mutex_);
  ++generation_;
  cv_.notify_all();
}

void MessageStore::with_delivery_lock(const std::function<void()>& fn) {
  std::lock_guard lock(mutex_);
  fn();
}

MessageStore::WakeToken MessageStore::token() const {
  std::lock_guard lock(mutex_);
  return WakeToken{delivered_messages_, generation_};
}

void MessageStore::wait_changed(const WakeToken& since) {
  std::unique_lock lock(mutex_);
  const auto timeout = std::chrono::milliseconds(wait_timeout_ms());
  const bool changed = cv_.wait_for(lock, timeout, [&] {
    return delivered_messages_ != since.deliveries || generation_ != since.generation;
  });
  if (!changed) {
    throw RuntimeFault(
        "MessageStore::wait_changed watchdog expired — likely distributed "
        "deadlock (posted=" +
        std::to_string(posted_.size()) +
        ", unexpected=" + std::to_string(unexpected_.size()) + ")");
  }
}

std::vector<Envelope> MessageStore::snapshot_unexpected(
    const std::function<bool(const Envelope&)>& keep) const {
  std::lock_guard lock(mutex_);
  std::vector<Envelope> out;
  for (const auto& env : unexpected_) {
    if (keep(env)) out.push_back(env);
  }
  return out;
}

std::size_t MessageStore::count_unexpected(
    const std::function<bool(const Envelope&)>& keep) const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& env : unexpected_) {
    if (keep(env)) ++n;
  }
  return n;
}

void MessageStore::inject(std::vector<Envelope> messages) {
  std::lock_guard lock(mutex_);
  // Injected messages were in flight at the checkpoint cut, so they are
  // causally OLDER than anything the fresh runtime has delivered: a peer
  // may already be replaying and its post-cut sends may have arrived before
  // this rank got around to re-injecting its saved queue. To preserve MPI's
  // non-overtaking order across the restart boundary, injected envelopes
  // match already-posted receives first and otherwise line up IN FRONT of
  // the newer unexpected envelopes, keeping their saved order.
  std::deque<Envelope> pending;
  for (auto& env : messages) {
    env.seq = next_seq_++;
    bool matched = false;
    for (auto it = posted_.begin(); it != posted_.end(); ++it) {
      if (it->pattern.matches(env)) {
        complete(*it, env);
        posted_.erase(it);
        matched = true;
        break;
      }
    }
    if (!matched) pending.push_back(std::move(env));
  }
  unexpected_.insert(unexpected_.begin(),
                     std::make_move_iterator(pending.begin()),
                     std::make_move_iterator(pending.end()));
  ++generation_;  // wake wait_changed() observers like notify() does
  cv_.notify_all();
}

std::uint64_t MessageStore::delivered_messages() const noexcept {
  std::lock_guard lock(mutex_);
  return delivered_messages_;
}

std::uint64_t MessageStore::delivered_bytes() const noexcept {
  std::lock_guard lock(mutex_);
  return delivered_bytes_;
}

}  // namespace manatee::simnet
