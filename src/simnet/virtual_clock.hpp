// virtual_clock.hpp — per-rank logical clock.
//
// Every rank thread owns exactly one VirtualClock. The clock advances on
// causal events only (compute phases, message send overhead, message
// completion), never on polling, so the final clock values are independent
// of OS thread scheduling. Message envelopes carry the sender's clock;
// receivers merge with max(), which models "waiting for the message to
// arrive" exactly.
#pragma once

#include <algorithm>

#include "simnet/time.hpp"

namespace manatee::simnet {

class VirtualClock {
 public:
  /// Current virtual time of this rank.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Advance by a non-negative cost (compute, software overhead).
  void advance(SimTime cost) noexcept { now_ += cost; }

  /// Merge with an event timestamp: models blocking until `t` (no-op if the
  /// event is already in this rank's past).
  void merge(SimTime t) noexcept { now_ = std::max(now_, t); }

  /// Reset, used when a fresh runtime is created at restart.
  void reset(SimTime t = 0) noexcept { now_ = t; }

 private:
  SimTime now_ = 0;
};

}  // namespace manatee::simnet
