// fabric.hpp — the interconnect: owns every rank's MessageStore, routes
// envelopes, applies the cost model, and keeps per-traffic-class counters.
//
// Traffic classes let the benchmarks demonstrate *why* 2PC is slow: the
// extra barrier messages it injects are visible as kCkptProtocol traffic,
// while CC's steady-state message count is identical to native.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "simnet/cost_model.hpp"
#include "simnet/mailbox.hpp"
#include "simnet/message.hpp"
#include "simnet/topology.hpp"
#include "simnet/virtual_clock.hpp"

namespace manatee::simnet {

enum class TrafficClass : int {
  kUserP2P = 0,      ///< application Send/Recv
  kCollective = 1,   ///< internal messages of collective algorithms
  kCkptProtocol = 2, ///< drain-protocol traffic (CC target updates, 2PC barriers)
  kControl = 3,      ///< coordinator control
};
constexpr int kTrafficClassCount = 4;

struct TrafficCounters {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class Fabric {
 public:
  Fabric(Topology topology, CostModel cost);

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const CostModel& cost() const noexcept { return cost_; }

  [[nodiscard]] MessageStore& store(int world_rank);

  /// Send `payload` from world rank `src_world` to `dst_world`.
  ///
  /// Charges the sender's clock the injection overhead, stamps the arrival
  /// time from the cost model, and delivers. `src_in_comm` is the sender's
  /// rank inside the communicator that owns `context` (what the receiver's
  /// match pattern sees).
  void send(int src_world, int dst_world, ContextId context, int src_in_comm,
            int tag, std::span<const std::byte> payload, VirtualClock& src_clock,
            TrafficClass traffic);

  /// Deliver a pre-built envelope without charging any clock (restart
  /// re-injection and coordinator control messages).
  void deliver_raw(int dst_world, Envelope env, TrafficClass traffic);

  /// Wake every rank blocked in a MessageStore::wait (out-of-band events).
  void notify_all_ranks();

  [[nodiscard]] TrafficCounters counters(TrafficClass traffic) const;
  [[nodiscard]] std::uint64_t total_messages() const;

 private:
  Topology topology_;
  CostModel cost_;
  std::vector<std::unique_ptr<MessageStore>> stores_;
  std::array<std::atomic<std::uint64_t>, kTrafficClassCount> class_messages_{};
  std::array<std::atomic<std::uint64_t>, kTrafficClassCount> class_bytes_{};
};

}  // namespace manatee::simnet
