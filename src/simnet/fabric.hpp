// fabric.hpp — the interconnect: owns every rank's MessageStore and the
// shared payload BufferPool, routes messages, applies the cost model, and
// keeps per-traffic-class counters.
//
// Traffic classes let the benchmarks demonstrate *why* 2PC is slow: the
// extra barrier messages it injects are visible as kCkptProtocol traffic,
// while CC's steady-state message count is identical to native.
//
// Counters are sharded per destination store (updated under that store's
// delivery lock) and folded on read — concurrent senders to different
// destinations never contend on a shared counter cache line.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "simnet/cost_model.hpp"
#include "simnet/mailbox.hpp"
#include "simnet/message.hpp"
#include "simnet/payload.hpp"
#include "simnet/switch_coll.hpp"
#include "simnet/topology.hpp"
#include "simnet/virtual_clock.hpp"

namespace manatee::simnet {

class Fabric {
 public:
  Fabric(Topology topology, CostModel cost);

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const CostModel& cost() const noexcept { return cost_; }

  [[nodiscard]] MessageStore& store(int world_rank);

  /// Payload pool backing every store's unexpected queue and the collective
  /// algorithms' scratch buffers.
  [[nodiscard]] BufferPool& pool() noexcept { return pool_; }

  /// The in-switch collective aggregation unit (switch_coll.hpp). Always
  /// present; admits sessions only when the topology advertises the
  /// capability (TopoSpec::switch_coll).
  [[nodiscard]] SwitchUnit& switch_unit() noexcept { return *switch_unit_; }

  /// Send `payload` from world rank `src_world` to `dst_world`.
  ///
  /// Charges the sender's clock the injection overhead, stamps the arrival
  /// time from the cost model, and delivers zero-copy: a matching posted
  /// receive is completed straight from `payload` (single memcpy, no
  /// envelope); otherwise the bytes are staged in a pool-backed envelope.
  /// `src_in_comm` is the sender's rank inside the communicator that owns
  /// `context` (what the receiver's match pattern sees).
  void send(int src_world, int dst_world, ContextId context, int src_in_comm,
            int tag, std::span<const std::byte> payload, VirtualClock& src_clock,
            TrafficClass traffic);

  /// Deliver a pre-built envelope without charging any clock (restart
  /// re-injection and coordinator control messages).
  void deliver_raw(int dst_world, Envelope env, TrafficClass traffic);

  /// Wake every rank blocked in a MessageStore wait (out-of-band events).
  void notify_all_ranks();

  [[nodiscard]] TrafficCounters counters(TrafficClass traffic) const;
  [[nodiscard]] std::uint64_t total_messages() const;

 private:
  // Concurrency contract (DESIGN.md §9): the Fabric itself holds no lock.
  // Every member below is written once in the constructor and immutable
  // afterwards; all mutable state lives behind each MessageStore's own
  // mutex (level 60) or the pool's per-class mutexes (level 30), so a
  // send() is exactly one store lock plus at most one pool-class lock.
  Topology topology_;
  CostModel cost_;
  BufferPool pool_;  ///< declared before stores_: destroyed after them
  std::vector<std::unique_ptr<MessageStore>> stores_;
  /// Declared after stores_: delivers into them, destroyed first. Its own
  /// mutex (level 70) sits between the coordinator (80) and the stores (60).
  std::unique_ptr<SwitchUnit> switch_unit_;
};

}  // namespace manatee::simnet
