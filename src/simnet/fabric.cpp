#include "simnet/fabric.hpp"

#include "common/error.hpp"

namespace manatee::simnet {

Fabric::Fabric(Topology topology, CostModel cost)
    : topology_(topology), cost_(cost) {
  stores_.reserve(static_cast<std::size_t>(topology_.world_size()));
  for (int i = 0; i < topology_.world_size(); ++i) {
    stores_.push_back(std::make_unique<MessageStore>(&pool_));
  }
  const TopoSpec& spec = topology_.spec();
  SwitchUnit::Limits limits;
  limits.enabled = spec.switch_coll;
  limits.max_members = spec.switch_max_members;
  limits.max_payload = spec.switch_max_payload;
  limits.rail_scale = static_cast<double>(spec.rails);
  switch_unit_ = std::make_unique<SwitchUnit>(this, limits);
}

MessageStore& Fabric::store(int world_rank) {
  MANATEE_REQUIRE(world_rank >= 0 && world_rank < topology_.world_size(),
                  "world rank out of range");
  return *stores_[static_cast<std::size_t>(world_rank)];
}

void Fabric::send(int src_world, int dst_world, ContextId context, int src_in_comm,
                  int tag, std::span<const std::byte> payload,
                  VirtualClock& src_clock, TrafficClass traffic) {
  MANATEE_REQUIRE(dst_world >= 0 && dst_world < topology_.world_size(),
                  "destination world rank out of range");
  src_clock.advance(cost_.injection_ns(payload.size()));
  const SimTime arrival =
      src_clock.now() +
      cost_.transfer_ns(payload.size(), topology_.path(src_world, dst_world));
  store(dst_world).deliver_bytes(context, src_in_comm, tag, arrival, payload,
                                 traffic);
}

void Fabric::deliver_raw(int dst_world, Envelope env, TrafficClass traffic) {
  store(dst_world).deliver(std::move(env), traffic);
}

void Fabric::notify_all_ranks() {
  for (auto& s : stores_) s->notify();
}

TrafficCounters Fabric::counters(TrafficClass traffic) const {
  TrafficCounters total;
  for (const auto& s : stores_) {
    const TrafficCounters c = s->traffic(traffic);
    total.messages += c.messages;
    total.bytes += c.bytes;
  }
  return total;
}

std::uint64_t Fabric::total_messages() const {
  std::uint64_t total = 0;
  for (const auto& s : stores_) {
    for (int cls = 0; cls < kTrafficClassCount; ++cls) {
      total += s->traffic(static_cast<TrafficClass>(cls)).messages;
    }
  }
  return total;
}

}  // namespace manatee::simnet
