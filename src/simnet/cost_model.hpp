// cost_model.hpp — LogGP-style network and software cost model.
//
// This is the substitute for the paper's Perlmutter/Slingshot-11 testbed
// (see DESIGN.md §1). Parameters are calibrated so that a 512-rank 4-byte
// broadcast sustains on the order of 10^5 calls/second — the regime Table 1
// reports for the OSU micro-benchmark — and so that the ratio between a
// collective's own cost and an inserted barrier's cost reproduces the
// 2PC-vs-CC overhead shapes of Fig. 5.
//
// All interposition costs charged by the checkpointing algorithms (seq-number
// increment for CC, extra barrier messages for 2PC) also flow through this
// model, so overhead comparisons are apples-to-apples.
#pragma once

#include <cmath>
#include <cstddef>

#include "simnet/time.hpp"
#include "simnet/topology.hpp"

namespace manatee::simnet {

struct CostParams {
  // --- network (LogGP alpha/beta) ---
  SimTime intra_node_latency_ns = 250;    ///< shared-memory hop
  SimTime inter_node_latency_ns = 1800;   ///< Slingshot-11-class first hop
  double intra_node_gbps = 200.0;         ///< shared-memory copy bandwidth, GB/s
  double inter_node_gbps = 25.0;          ///< NIC bandwidth, GB/s
  /// Each inter-node switch hop beyond the first (fat-tree spine climbs,
  /// dragonfly global links) adds this store-and-forward latency.
  SimTime extra_hop_latency_ns = 300;
  /// In-switch collective unit: ALU time to fold one contribution into the
  /// aggregation state (simnet/switch_coll.hpp charges it per member).
  SimTime switch_aggregate_ns = 120;

  // --- per-call CPU overheads ---
  SimTime send_overhead_ns = 150;   ///< o_s: software path to inject a message
  SimTime recv_overhead_ns = 150;   ///< o_r: software path to complete a receive
  SimTime reduce_ns_per_byte = 0;   ///< arithmetic cost of reduction operators
                                    ///  (0: reductions modeled as bandwidth-bound)

  // --- checkpoint-algorithm interposition costs ---
  /// CC blocking-collective wrapper: a hash-map lookup plus an integer
  /// increment (paper §4.2.1 "inherently low overhead").
  SimTime cc_wrapper_ns = 45;
  /// CC non-blocking wrapper: *total* added CPU per non-blocking collective,
  /// split across its two interposition points — the SEQ increment before
  /// initiation (same software path as the blocking wrapper) and the
  /// request-tracking teardown on the completing Test/Wait. Both are serial
  /// CPU costs, so on the short operations of the OSU small-message regime
  /// the relative overhead exceeds the blocking wrapper's (paper §5.1.2);
  /// the operation itself still progresses on its own clock, which is what
  /// preserves Figure 6's communication/computation overlap.
  SimTime cc_nbc_wrapper_ns = 90;
  /// 2PC per-collective software path: wrapper bookkeeping plus the
  /// Ibarrier/Test polling loop of the original MANA implementation. The
  /// paper's own numbers calibrate this to tens of microseconds: OSU Bcast
  /// 4B runs at ~4 us/call natively and 2PC shows up to ~1000%% overhead
  /// (Fig. 5a), i.e. ~40 us of added cost per call. The inserted barrier's
  /// *messages* are charged through the fabric on top of this.
  SimTime tpc_wrapper_ns = 12'000;

  /// Point-to-point wrapper costs (request/communicator virtualization,
  /// Test/Wait interposition). These drive the application-level overheads
  /// of p2p-heavy codes (VASP's 2569 p2p calls/s) without touching the
  /// OSU blocking-collective latency path.
  SimTime cc_p2p_wrapper_ns = 1'500;
  SimTime tpc_p2p_wrapper_ns = 2'500;

  // --- stable storage (checkpoint images; Figure 9) ---
  /// Aggregate Lustre-class bandwidth shared by all ranks, GB/s. Image
  /// write/read time = bytes * world_size / this.
  double lustre_gbps = 40.0;
};

/// Immutable cost model shared by all ranks of one runtime.
class CostModel {
 public:
  explicit CostModel(CostParams params = {}) noexcept : p_(params) {}

  [[nodiscard]] const CostParams& params() const noexcept { return p_; }

  /// Wire time for `bytes` along `path`: alpha(hops) + bytes/beta(route).
  /// The bandwidth term is accumulated in double and rounded once —
  /// truncating it per call made every payload under ~`gbps` bytes
  /// contribute zero bandwidth cost, which skewed small-message
  /// calibration (and with it the selection thresholds).
  [[nodiscard]] SimTime transfer_ns(std::size_t bytes,
                                    const PathCost& path) const noexcept {
    if (path.same_node) {
      return p_.intra_node_latency_ns +
             static_cast<SimTime>(
                 std::llround(static_cast<double>(bytes) / p_.intra_node_gbps));
    }
    const SimTime alpha =
        p_.inter_node_latency_ns +
        p_.extra_hop_latency_ns * static_cast<SimTime>(path.hops > 0 ? path.hops - 1 : 0);
    // bytes / (GB/s) = bytes * ns/byte given 1 GB/s == 1 byte/ns.
    const double gbps = p_.inter_node_gbps * (path.bw_scale > 0 ? path.bw_scale : 1.0);
    return alpha + static_cast<SimTime>(
                       std::llround(static_cast<double>(bytes) / gbps));
  }

  /// Binary same-node shorthand (a 0-hop or single-hop single-rail route).
  [[nodiscard]] SimTime transfer_ns(std::size_t bytes, bool same_node) const noexcept {
    return transfer_ns(bytes, same_node ? PathCost{0, 1.0, true}
                                        : PathCost{1, 1.0, false});
  }

  [[nodiscard]] SimTime send_overhead() const noexcept { return p_.send_overhead_ns; }
  [[nodiscard]] SimTime recv_overhead() const noexcept { return p_.recv_overhead_ns; }

  /// Sender-side injection cost: software overhead plus copying the
  /// payload toward the NIC at memory bandwidth. This serializes a
  /// sender's back-to-back large sends (LogGP's G term) so large-message
  /// collectives become bandwidth-bound rather than infinitely pipelined.
  [[nodiscard]] SimTime injection_ns(std::size_t bytes) const noexcept {
    return p_.send_overhead_ns +
           static_cast<SimTime>(
               std::llround(static_cast<double>(bytes) / p_.intra_node_gbps));
  }

  [[nodiscard]] SimTime switch_aggregate_cost() const noexcept {
    return p_.switch_aggregate_ns;
  }

  [[nodiscard]] SimTime reduce_cost(std::size_t bytes) const noexcept {
    return p_.reduce_ns_per_byte * static_cast<SimTime>(bytes);
  }

  [[nodiscard]] SimTime cc_wrapper_cost() const noexcept { return p_.cc_wrapper_ns; }
  [[nodiscard]] SimTime cc_nbc_wrapper_cost() const noexcept {
    return p_.cc_nbc_wrapper_ns;
  }
  /// Initiation share of the NBC wrapper: the SEQ increment, charged before
  /// the lower-half call (it delays the operation's start).
  [[nodiscard]] SimTime cc_nbc_initiation_cost() const noexcept {
    return p_.cc_wrapper_ns < p_.cc_nbc_wrapper_ns ? p_.cc_wrapper_ns
                                                   : p_.cc_nbc_wrapper_ns;
  }
  /// Completion share: request-tracking teardown on the completing
  /// Test/Wait, charged after the completion has been observed.
  [[nodiscard]] SimTime cc_nbc_completion_cost() const noexcept {
    return p_.cc_nbc_wrapper_ns - cc_nbc_initiation_cost();
  }
  [[nodiscard]] SimTime tpc_wrapper_cost() const noexcept { return p_.tpc_wrapper_ns; }
  [[nodiscard]] SimTime cc_p2p_wrapper_cost() const noexcept {
    return p_.cc_p2p_wrapper_ns;
  }
  [[nodiscard]] SimTime tpc_p2p_wrapper_cost() const noexcept {
    return p_.tpc_p2p_wrapper_ns;
  }

 private:
  CostParams p_;
};

}  // namespace manatee::simnet
