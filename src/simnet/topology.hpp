// topology.hpp — cluster topology model: named cluster shapes and path costs.
//
// The paper's experiments place 128 MPI processes per Perlmutter node; the
// intra- vs inter-node distinction drives both the cost model (Slingshot
// hop vs shared-memory copy) and the paper's Fig. 8 discussion (the 256-rank
// dip at the first multi-node point). Beyond the flat ranks-per-node model,
// a Topology can describe multi-rail node groups, a fat-tree with per-level
// link costs, or dragonfly groups; the fabric charges transfers through
// path() — hop count and bandwidth scale of the route — instead of the old
// binary same-node check, and the collective selection layer consults
// node_count()/spec() to pick hierarchical or switch-offloaded algorithms.
#pragma once

#include <cstddef>
#include <string>

#include "common/error.hpp"

namespace manatee::simnet {

/// Named cluster shapes. kFlat is a single switch (every inter-node route
/// is one hop); kFatTree groups nodes under leaf switches with a spine
/// above (cross-group routes climb leaf→spine→leaf and see the uplink
/// oversubscription); kDragonfly groups nodes into all-to-all-connected
/// groups (cross-group routes take one local plus one global hop).
enum class TopoKind : int { kFlat = 0, kFatTree = 1, kDragonfly = 2 };

[[nodiscard]] const char* topo_kind_name(TopoKind kind) noexcept;

/// Declarative topology description (part of the job configuration, like
/// world_size — identical across ranks by construction).
struct TopoSpec {
  TopoKind kind = TopoKind::kFlat;
  /// Ranks packed per node; 0 = inherit the runtime's ranks_per_node.
  int ranks_per_node = 0;
  /// Parallel inter-node rails (NICs) per node; scales injection bandwidth
  /// of every inter-node route.
  int rails = 1;
  /// Nodes per leaf pod (fat-tree) / per group (dragonfly); 0 = all nodes
  /// in one group (both shapes then degenerate to a 1-hop flat switch).
  int nodes_per_group = 0;
  /// Fat-tree uplink taper: cross-group bandwidth is divided by this
  /// (1.0 = full bisection).
  double oversubscription = 1.0;
  /// The switches carry an in-network collective aggregation unit
  /// (simnet/switch_coll.hpp); enables the "switch" barrier/bcast path.
  bool switch_coll = false;
  /// Per-session member cap of the aggregation unit; communicators above
  /// it are inadmissible (software fallback).
  int switch_max_members = 4096;
  /// Largest payload the unit aggregates (bytes); bigger rounds are
  /// rejected at contribution time (software fallback).
  std::size_t switch_max_payload = 1024;
};

/// Parse a topology description string, e.g. "flat", "flat:rpn=16,rails=2",
/// "fattree:rpn=8,group=4,oversub=2", "dragonfly:rpn=8,group=2,switch=1".
/// Unknown shapes or keys throw UsageError.
[[nodiscard]] TopoSpec parse_topo_spec(const std::string& text);

/// The route between two world ranks, as the cost model prices it.
struct PathCost {
  int hops = 0;           ///< inter-node switch hops (0 = shared memory)
  double bw_scale = 1.0;  ///< multiplier on the inter-node bandwidth term
  bool same_node = true;
};

class Topology {
 public:
  /// Flat shape shorthand (the historical constructor).
  /// `ranks_per_node == 0` is invalid; one rank per node is allowed.
  Topology(int world_size, int ranks_per_node)
      : Topology(world_size, make_flat(ranks_per_node)) {}

  Topology(int world_size, TopoSpec spec) : world_size_(world_size), spec_(spec) {
    MANATEE_REQUIRE(world_size > 0, "world size must be positive");
    MANATEE_REQUIRE(spec_.ranks_per_node > 0, "ranks per node must be positive");
    MANATEE_REQUIRE(spec_.rails >= 1, "a node needs at least one rail");
    MANATEE_REQUIRE(spec_.nodes_per_group >= 0, "nodes per group must be >= 0");
    MANATEE_REQUIRE(spec_.oversubscription >= 1.0,
                    "oversubscription below 1 would create bandwidth");
  }

  [[nodiscard]] int world_size() const noexcept { return world_size_; }
  [[nodiscard]] int ranks_per_node() const noexcept { return spec_.ranks_per_node; }
  [[nodiscard]] const TopoSpec& spec() const noexcept { return spec_; }

  [[nodiscard]] int node_of(int world_rank) const noexcept {
    return world_rank / spec_.ranks_per_node;
  }

  [[nodiscard]] bool same_node(int a, int b) const noexcept {
    return node_of(a) == node_of(b);
  }

  [[nodiscard]] int node_count() const noexcept {
    return (world_size_ + spec_.ranks_per_node - 1) / spec_.ranks_per_node;
  }

  /// Leaf pod (fat-tree) / group (dragonfly) of a node.
  [[nodiscard]] int group_of_node(int node) const noexcept {
    return spec_.nodes_per_group > 0 ? node / spec_.nodes_per_group : 0;
  }

  [[nodiscard]] int group_count() const noexcept {
    if (spec_.nodes_per_group <= 0) return 1;
    return (node_count() + spec_.nodes_per_group - 1) / spec_.nodes_per_group;
  }

  /// Route between two world ranks. Same node: shared memory (0 hops).
  /// Same group: one leaf/local switch hop at full rail bandwidth.
  /// Cross-group: fat-tree climbs leaf→spine→leaf (3 hops, tapered by the
  /// oversubscription); dragonfly takes a local plus a global hop (2 hops).
  [[nodiscard]] PathCost path(int a, int b) const noexcept {
    const int na = node_of(a);
    const int nb = node_of(b);
    if (na == nb) return PathCost{0, 1.0, true};
    const double rails = static_cast<double>(spec_.rails);
    if (group_of_node(na) == group_of_node(nb)) {
      return PathCost{1, rails, false};
    }
    switch (spec_.kind) {
      case TopoKind::kFatTree:
        return PathCost{3, rails / spec_.oversubscription, false};
      case TopoKind::kDragonfly:
        return PathCost{2, rails, false};
      case TopoKind::kFlat:
        break;
    }
    return PathCost{1, rails, false};
  }

  [[nodiscard]] std::string describe() const;

 private:
  static TopoSpec make_flat(int ranks_per_node) {
    TopoSpec spec;
    spec.ranks_per_node = ranks_per_node;
    return spec;
  }

  int world_size_;
  TopoSpec spec_;
};

}  // namespace manatee::simnet
