// topology.hpp — cluster topology model: which ranks share a node.
//
// The paper's experiments place 128 MPI processes per Perlmutter node; the
// intra- vs inter-node distinction drives both the cost model (Slingshot
// hop vs shared-memory copy) and the paper's Fig. 8 discussion (the 256-rank
// dip at the first multi-node point).
#pragma once

#include <string>

#include "common/error.hpp"

namespace manatee::simnet {

class Topology {
 public:
  /// `ranks_per_node == 0` is invalid; one rank per node is allowed.
  Topology(int world_size, int ranks_per_node)
      : world_size_(world_size), ranks_per_node_(ranks_per_node) {
    MANATEE_REQUIRE(world_size > 0, "world size must be positive");
    MANATEE_REQUIRE(ranks_per_node > 0, "ranks per node must be positive");
  }

  [[nodiscard]] int world_size() const noexcept { return world_size_; }
  [[nodiscard]] int ranks_per_node() const noexcept { return ranks_per_node_; }

  [[nodiscard]] int node_of(int world_rank) const noexcept {
    return world_rank / ranks_per_node_;
  }

  [[nodiscard]] bool same_node(int a, int b) const noexcept {
    return node_of(a) == node_of(b);
  }

  [[nodiscard]] int node_count() const noexcept {
    return (world_size_ + ranks_per_node_ - 1) / ranks_per_node_;
  }

  [[nodiscard]] std::string describe() const {
    return std::to_string(world_size_) + " ranks over " +
           std::to_string(node_count()) + " node(s), " +
           std::to_string(ranks_per_node_) + " ranks/node";
  }

 private:
  int world_size_;
  int ranks_per_node_;
};

}  // namespace manatee::simnet
