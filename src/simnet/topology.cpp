#include "simnet/topology.hpp"

#include <cstdlib>

namespace manatee::simnet {

const char* topo_kind_name(TopoKind kind) noexcept {
  switch (kind) {
    case TopoKind::kFlat: return "flat";
    case TopoKind::kFatTree: return "fattree";
    case TopoKind::kDragonfly: return "dragonfly";
  }
  return "?";
}

TopoSpec parse_topo_spec(const std::string& text) {
  TopoSpec spec;
  const std::size_t colon = text.find(':');
  const std::string shape = text.substr(0, colon);
  if (shape == "flat" || shape.empty()) {
    spec.kind = TopoKind::kFlat;
  } else if (shape == "fattree") {
    spec.kind = TopoKind::kFatTree;
  } else if (shape == "dragonfly") {
    spec.kind = TopoKind::kDragonfly;
  } else {
    throw UsageError("unknown topology shape '" + shape +
                     "' (flat|fattree|dragonfly)");
  }
  if (colon == std::string::npos) return spec;

  std::string params = text.substr(colon + 1);
  std::size_t pos = 0;
  while (pos < params.size()) {
    std::size_t comma = params.find(',', pos);
    if (comma == std::string::npos) comma = params.size();
    const std::string kv = params.substr(pos, comma - pos);
    pos = comma + 1;
    if (kv.empty()) continue;
    const std::size_t eq = kv.find('=');
    MANATEE_REQUIRE(eq != std::string::npos,
                    "topology parameter '" + kv + "' needs key=value");
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    if (key == "rpn") {
      spec.ranks_per_node = std::atoi(value.c_str());
    } else if (key == "rails") {
      spec.rails = std::atoi(value.c_str());
    } else if (key == "group") {
      spec.nodes_per_group = std::atoi(value.c_str());
    } else if (key == "oversub") {
      spec.oversubscription = std::atof(value.c_str());
    } else if (key == "switch") {
      spec.switch_coll = std::atoi(value.c_str()) != 0;
    } else if (key == "switch-members") {
      spec.switch_max_members = std::atoi(value.c_str());
    } else if (key == "switch-payload") {
      spec.switch_max_payload =
          static_cast<std::size_t>(std::atoll(value.c_str()));
    } else {
      throw UsageError("unknown topology parameter '" + key + "'");
    }
  }
  return spec;
}

std::string Topology::describe() const {
  std::string out = std::to_string(world_size_) + " ranks over " +
                    std::to_string(node_count()) + " node(s), " +
                    std::to_string(spec_.ranks_per_node) + " ranks/node, " +
                    topo_kind_name(spec_.kind);
  if (spec_.rails > 1) out += ", " + std::to_string(spec_.rails) + " rails";
  if (spec_.nodes_per_group > 0) {
    out += ", " + std::to_string(spec_.nodes_per_group) + " nodes/group";
  }
  if (spec_.kind == TopoKind::kFatTree && spec_.oversubscription > 1.0) {
    out += ", " + std::to_string(spec_.oversubscription) + ":1 oversubscribed";
  }
  if (spec_.switch_coll) out += ", in-switch collectives";
  return out;
}

}  // namespace manatee::simnet
