// payload.hpp — pooled message payload storage for the simnet data path.
//
// A PayloadBuffer replaces std::vector<std::byte> inside Envelope (and the
// collective algorithms' staging buffers): payloads of up to
// kInlineCapacity (64) bytes live inline in the buffer object itself — the
// eager-message regime of the paper's benchmarks never touches the heap —
// and larger payloads borrow a slab block from a BufferPool, a per-fabric
// thread-safe size-class allocator. Blocks return to their pool when the
// buffer dies, so steady-state traffic recycles a small working set
// instead of hammering the global allocator from every rank thread.
//
// Checkpoint images must not retain pool blocks across a fabric teardown;
// capture paths deep-copy payloads out via to_vector() (see
// MessageStore::snapshot_unexpected).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace manatee::simnet {

/// Thread-safe slab allocator with power-of-two size classes (128 B up to
/// 128 KiB). Larger requests fall through to the global allocator; freed
/// class blocks are cached up to a per-class cap.
class BufferPool {
 public:
  static constexpr std::size_t kMinBlock = 128;
  static constexpr int kClassCount = 11;  // 128 B << 10 == 128 KiB
  static constexpr std::size_t kMaxPooled = kMinBlock << (kClassCount - 1);
  static constexpr std::size_t kMaxFreePerClass = 1024;

  BufferPool() = default;
  ~BufferPool() {
    for (auto& cls : classes_) {
      for (std::byte* block : cls.free) ::operator delete(block);
    }
  }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a block of at least `min_bytes`; *capacity_out receives the
  /// actual block capacity (pass it back verbatim to release()).
  [[nodiscard]] std::byte* acquire(std::size_t min_bytes,
                                   std::size_t* capacity_out) {
    if (min_bytes > kMaxPooled) {
      *capacity_out = min_bytes;
      oversize_.fetch_add(1, std::memory_order_relaxed);
      return static_cast<std::byte*>(::operator new(min_bytes));
    }
    const int idx = class_of(min_bytes);
    const std::size_t cap = kMinBlock << idx;
    *capacity_out = cap;
    Class& cls = classes_[static_cast<std::size_t>(idx)];
    {
      common::MutexLock lock(cls.mutex);
      if (!cls.free.empty()) {
        std::byte* block = cls.free.back();
        cls.free.pop_back();
        hits_.fetch_add(1, std::memory_order_relaxed);
        return block;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return static_cast<std::byte*>(::operator new(cap));
  }

  void release(std::byte* block, std::size_t capacity) noexcept {
    if (capacity > kMaxPooled) {
      ::operator delete(block);
      return;
    }
    Class& cls = classes_[static_cast<std::size_t>(class_of(capacity))];
    {
      common::MutexLock lock(cls.mutex);
      if (cls.free.size() < kMaxFreePerClass) {
        cls.free.push_back(block);
        return;
      }
    }
    ::operator delete(block);
  }

  struct Stats {
    std::uint64_t hits = 0;      ///< blocks served from a free list
    std::uint64_t misses = 0;    ///< blocks newly allocated for a class
    std::uint64_t oversize = 0;  ///< requests beyond kMaxPooled
  };
  [[nodiscard]] Stats stats() const noexcept {
    return Stats{hits_.load(std::memory_order_relaxed),
                 misses_.load(std::memory_order_relaxed),
                 oversize_.load(std::memory_order_relaxed)};
  }

 private:
  [[nodiscard]] static int class_of(std::size_t n) noexcept {
    int idx = 0;
    std::size_t cap = kMinBlock;
    while (cap < n) {
      cap <<= 1;
      ++idx;
    }
    return idx;
  }

  struct Class {
    common::Mutex mutex;  // lock level 30 (leaf under the store mutex)
    std::vector<std::byte*> free MANATEE_GUARDED_BY(mutex);
  };
  std::array<Class, static_cast<std::size_t>(kClassCount)> classes_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> oversize_{0};
};

/// Byte buffer with 64-byte inline storage and optional pool backing.
/// Move-only; the destructor returns a pooled block to its pool (pools must
/// outlive every buffer they back — the Fabric declares its pool before its
/// stores for exactly this reason). ensure()/assign() without a pool fall
/// back to the global allocator, so standalone MessageStores (unit tests)
/// need no pool wiring.
class PayloadBuffer {
 public:
  static constexpr std::size_t kInlineCapacity = 64;

  PayloadBuffer() noexcept = default;

  PayloadBuffer(PayloadBuffer&& other) noexcept { steal(other); }
  PayloadBuffer& operator=(PayloadBuffer&& other) noexcept {
    if (this != &other) {
      free_block();
      steal(other);
    }
    return *this;
  }

  PayloadBuffer(const PayloadBuffer&) = delete;
  PayloadBuffer& operator=(const PayloadBuffer&) = delete;

  ~PayloadBuffer() { free_block(); }

  [[nodiscard]] std::byte* data() noexcept {
    return heap_ != nullptr ? heap_ : inline_.data();
  }
  [[nodiscard]] const std::byte* data() const noexcept {
    return heap_ != nullptr ? heap_ : inline_.data();
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] std::span<std::byte> span() noexcept { return {data(), size_}; }
  [[nodiscard]] std::span<const std::byte> span() const noexcept {
    return {data(), size_};
  }
  operator std::span<std::byte>() noexcept { return span(); }
  operator std::span<const std::byte>() const noexcept { return span(); }

  /// Grow/shrink to exactly `n` bytes of *uninitialized* storage (existing
  /// contents are NOT preserved across a reallocation). `pool` may be null.
  void ensure(BufferPool* pool, std::size_t n) {
    if (n > capacity()) {
      free_block();
      if (pool != nullptr) {
        heap_ = pool->acquire(n, &heap_cap_);
        pool_ = pool;
      } else {
        heap_ = static_cast<std::byte*>(::operator new(n));
        heap_cap_ = n;
        pool_ = nullptr;
      }
    }
    size_ = n;
  }

  void assign(BufferPool* pool, std::span<const std::byte> bytes) {
    ensure(pool, bytes.size());
    if (!bytes.empty()) std::memcpy(data(), bytes.data(), bytes.size());
  }
  void assign(std::span<const std::byte> bytes) { assign(nullptr, bytes); }

  /// Logical clear; keeps the block for reuse.
  void clear() noexcept { size_ = 0; }

  /// Deep copy into independently-owned storage (checkpoint capture).
  [[nodiscard]] std::vector<std::byte> to_vector() const {
    return std::vector<std::byte>(data(), data() + size_);
  }

 private:
  [[nodiscard]] std::size_t capacity() const noexcept {
    return heap_ != nullptr ? heap_cap_ : kInlineCapacity;
  }

  void free_block() noexcept {
    if (heap_ != nullptr) {
      if (pool_ != nullptr) {
        pool_->release(heap_, heap_cap_);
      } else {
        ::operator delete(heap_);
      }
      heap_ = nullptr;
      pool_ = nullptr;
      heap_cap_ = 0;
    }
    size_ = 0;
  }

  void steal(PayloadBuffer& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      heap_cap_ = other.heap_cap_;
      pool_ = other.pool_;
      other.heap_ = nullptr;
      other.heap_cap_ = 0;
      other.pool_ = nullptr;
    } else if (other.size_ > 0) {
      std::memcpy(inline_.data(), other.inline_.data(), other.size_);
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  BufferPool* pool_ = nullptr;  ///< owner of heap_ (null: global allocator)
  std::byte* heap_ = nullptr;   ///< null: payload lives in inline_
  std::size_t heap_cap_ = 0;
  std::size_t size_ = 0;
  alignas(std::max_align_t) std::array<std::byte, kInlineCapacity> inline_;
};

}  // namespace manatee::simnet
