// mailbox.hpp — per-rank message store with MPI-semantics matching.
//
// Implements the two-queue structure of real MPI libraries — posted
// receives waiting for messages, unexpected messages waiting for receives —
// with both queues *binned by (context, source)*:
//
//   * a message always has a concrete (context, src), so it lands in
//     exactly one bin and a specific-source receive scans only its bin;
//   * ANY_SOURCE receives live in a per-context wildcard list; the
//     globally monotone Envelope::seq (arrival order) and a posted-order
//     counter arbitrate between bins and wildcard entries, preserving the
//     exact matching order of a single linear queue — MPI non-overtaking
//     per source, post-order matching across receives (the property tests
//     in tests/simnet/test_mailbox_property.cpp check equivalence against
//     a reference linear matcher).
//
// Delivery is eager and zero-copy: Fabric::send hands the store the
// sender's payload span, and when a posted receive matches, the bytes move
// straight into the receive buffer — one memcpy, no envelope allocation.
// Only unexpected messages materialize an Envelope, whose payload storage
// comes from the fabric's BufferPool (inline for ≤64 B).
//
// Blocking primitives use per-waiter sched::Waiter parks with interest
// tracking: a delivery wakes only waiters whose posted receive completed
// (wait_recv), whose probe pattern the new unexpected message matches
// (wait_probe), or who asked for any event (wait / wait_changed). The
// Waiter is backend-neutral (sched/waiter.hpp): a rank hosted on an OS
// thread blocks on a condition variable exactly as before, while a rank
// hosted on a fiber suspends cooperatively and the wake re-enqueues that
// fiber on its scheduler — this one chokepoint is what makes every park
// site in the runtime (recv/wait/probe/drive, blocking_loop, drain and
// 2PC parks) fiber-safe without call-site changes. The events backend adds
// a fourth shape via watch_recv/unwatch: a *persistent* targeted interest
// with no blocked context behind it, notified through the waiter's armed
// continuation — the mechanism under stackless parking. Wake paths hand
// the scheduler whole batches of waiters (sched::Waiter::notify_batch)
// instead of one lock round per wakeup. All waits carry a global watchdog
// timeout that converts distributed deadlock into a loud RuntimeFault
// instead of a hung test suite.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/function_ref.hpp"
#include "common/mutex.hpp"
#include "sched/waiter.hpp"
#include "simnet/message.hpp"

namespace manatee::simnet {

/// Result of a successful (I)Probe: metadata of the first matching message.
struct ProbeInfo {
  int src = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
  SimTime arrival_ns = 0;
};

class MessageStore {
 public:
  /// `pool` backs unexpected-message payloads (null: global allocator —
  /// standalone stores in unit tests need no wiring).
  explicit MessageStore(BufferPool* pool = nullptr) noexcept : pool_(pool) {}

  /// Watchdog for blocking waits, in milliseconds of *wall* time. Applies
  /// process-wide; tests lower it to fail fast on real deadlocks.
  static void set_wait_timeout_ms(long ms) noexcept;
  static long wait_timeout_ms() noexcept;

  /// Deliver a pre-built envelope (restart re-injection, control traffic,
  /// tests). If a posted receive matches, the payload is copied into its
  /// buffer; otherwise the envelope joins its unexpected bin.
  void deliver(Envelope&& env, TrafficClass traffic = TrafficClass::kUserP2P);

  /// Zero-copy delivery straight from the sender's buffer (Fabric::send).
  /// When a posted receive matches, the payload moves source→destination
  /// with a single memcpy and no envelope is ever materialized.
  void deliver_bytes(ContextId context, int src, int tag, SimTime arrival_ns,
                     std::span<const std::byte> payload, TrafficClass traffic);

  /// Post a receive. `result` must stay alive until completion or cancel.
  /// If an unexpected message already matches, completes immediately.
  void post_recv(const MatchPattern& pattern, std::byte* dest,
                 std::size_t capacity, RecvResult* result);

  /// Remove a posted-but-unmatched receive. Returns false if it already
  /// completed (or was never posted).
  bool cancel_recv(const RecvResult* result);

  /// Non-blocking probe of the unexpected queues.
  [[nodiscard]] std::optional<ProbeInfo> iprobe(const MatchPattern& pattern);

  /// Pop the first unexpected message matching `pattern` into `dest`,
  /// completing `result`. Returns false (leaving `result` untouched) if
  /// nothing matches.
  bool try_recv_unexpected(const MatchPattern& pattern, std::byte* dest,
                           std::size_t capacity, RecvResult* result);

  /// Block until pred() is true. pred is evaluated under the store lock and
  /// re-checked on every delivery and on notify(). Throws RuntimeFault when
  /// the watchdog expires. Wakes on *any* store event.
  void wait(common::FunctionRef<bool()> pred);

  /// Targeted wait: block until `result` completes or `interrupt()` turns
  /// true (interrupt is re-checked on notify()/inject, which wake every
  /// waiter). Deliveries that cannot have completed `result` do not wake
  /// the caller. The caller distinguishes the two outcomes itself.
  void wait_recv(const RecvResult& result, common::FunctionRef<bool()> interrupt);

  /// Targeted probe wait: block until an unexpected message matches
  /// `pattern` (returning its metadata) or `interrupt()` turns true
  /// (returning nullopt). Only matching unexpected arrivals wake the caller.
  std::optional<ProbeInfo> wait_probe(const MatchPattern& pattern,
                                      common::FunctionRef<bool()> interrupt);

  /// Persistent targeted interest (the events drive loop): until unwatch(),
  /// every event that may have satisfied the caller — completion of
  /// `result`, or any store-wide notify()/inject() — notifies `parker`,
  /// which typically carries an armed continuation rather than a blocked
  /// context. A second watch_recv with the same parker re-targets the
  /// existing watch in one lock round. Returns whether `result` is already
  /// done, checked under the store lock *after* registering — so a delivery
  /// racing the registration is never lost: either the caller sees done now,
  /// or the watch fires later.
  bool watch_recv(const RecvResult* result, sched::Waiter* parker);

  /// Drop the watch registered under `parker`. Idempotent.
  void unwatch(sched::Waiter* parker);

  /// Wake all waiters (used by out-of-band state changes, e.g. the
  /// checkpoint coordinator flipping a flag the waiter's pred reads).
  /// Bumps the generation counter so wait_changed() observers also wake.
  void notify();

  /// Run `fn` under the store mutex, excluding concurrent deliveries: a
  /// caller that must consistently read buffers targeted by posted
  /// receives (the checkpoint registry's shadow sync) runs inside. `fn`
  /// must not call back into this store.
  void with_delivery_lock(common::FunctionRef<void()> fn);

  /// Snapshot of "has anything happened" state, for poll-style loops
  /// (progress engines, blocking probe). Take a token, poll your condition,
  /// and if unsatisfied call wait_changed(token): it returns as soon as any
  /// delivery or notify() occurred after the token was taken.
  struct WakeToken {
    std::uint64_t deliveries = 0;
    std::uint64_t generation = 0;
  };
  [[nodiscard]] WakeToken token() const;
  void wait_changed(const WakeToken& since);

  // --- checkpoint support ---

  /// Deep copies (out of the pool) of all unexpected envelopes satisfying
  /// `keep`, in exact arrival order across bins.
  [[nodiscard]] std::vector<CapturedEnvelope> snapshot_unexpected(
      common::FunctionRef<bool(const Envelope&)> keep) const;

  /// Number of unexpected envelopes satisfying `keep`.
  [[nodiscard]] std::size_t count_unexpected(
      common::FunctionRef<bool(const Envelope&)> keep) const;

  /// Restart path: re-inject saved messages. Injected envelopes match
  /// already-posted receives first; the rest line up IN FRONT of every
  /// newer unexpected envelope (negative sequence numbers), keeping their
  /// saved order — MPI non-overtaking across the restart boundary.
  void inject(std::vector<CapturedEnvelope> messages);

  // --- stats ---
  [[nodiscard]] std::uint64_t delivered_messages() const;
  [[nodiscard]] std::uint64_t delivered_bytes() const;

  /// Per-class delivery counters of this store (folded across stores by
  /// Fabric::counters — per-destination sharding keeps concurrent senders
  /// off any shared cache line). Lock-free: the counters are relaxed
  /// atomics, so a 64k-store fold never queues behind 64k delivery locks.
  [[nodiscard]] TrafficCounters traffic(TrafficClass traffic) const;

  /// Deliveries that completed a posted receive in place (the zero-copy
  /// eager path); the complement materialized an unexpected envelope.
  [[nodiscard]] std::uint64_t eager_completions() const;

  /// The watchdog's deadlock-diagnostics line, for callers that run their
  /// own deadline (the events drive loop) and want to fault with the same
  /// text wait() would have produced.
  [[nodiscard]] std::string wait_diagnostics(const char* what) const;

 private:
  struct Posted {
    MatchPattern pattern;
    std::byte* dest = nullptr;
    std::size_t capacity = 0;
    RecvResult* result = nullptr;
    std::uint64_t post_seq = 0;  ///< global post order (bins vs wildcard)
  };

  /// FIFO envelope queue: a vector with a head cursor, so the overwhelmingly
  /// common pop-at-front (in-order tag match) is O(1) and steady-state
  /// traffic reuses capacity instead of reallocating. (A plain vector
  /// erase-from-front goes quadratic exactly in the regime the benches
  /// stress: a collective root racing iterations ahead of its children
  /// floods their bins with in-order messages.)
  class EnvelopeQueue {
   public:
    [[nodiscard]] std::size_t size() const noexcept {
      return items_.size() - head_;
    }
    [[nodiscard]] bool empty() const noexcept { return head_ == items_.size(); }
    [[nodiscard]] Envelope& operator[](std::size_t i) noexcept {
      return items_[head_ + i];
    }
    [[nodiscard]] const Envelope& operator[](std::size_t i) const noexcept {
      return items_[head_ + i];
    }

    void push_back(Envelope&& env) { items_.push_back(std::move(env)); }

    /// Restart injection: line up in front of everything queued.
    void push_front(Envelope&& env) {
      if (head_ > 0) {
        items_[--head_] = std::move(env);
      } else {
        items_.insert(items_.begin(), std::move(env));
      }
    }

    /// Removes and returns the i-th queued envelope (front pop is O(1)).
    Envelope remove(std::size_t i) {
      Envelope out = std::move(items_[head_ + i]);
      if (i == 0) {
        ++head_;
        if (head_ == items_.size()) {
          items_.clear();
          head_ = 0;
        } else if (head_ >= 32 && head_ >= items_.size() / 2) {
          items_.erase(items_.begin(),
                       items_.begin() + static_cast<std::ptrdiff_t>(head_));
          head_ = 0;
        }
      } else {
        items_.erase(items_.begin() +
                     static_cast<std::ptrdiff_t>(head_ + i));
      }
      return out;
    }

   private:
    std::vector<Envelope> items_;
    std::size_t head_ = 0;  ///< index of the queue front within items_
  };

  /// One (context, src) bin: FIFO unexpected messages + posted receives
  /// naming this exact source.
  struct Bin {
    EnvelopeQueue unexpected;
    std::vector<Posted> posted;
  };

  struct ContextBins {
    /// (src → bin), sorted by src. A rank talks to O(log p) tree neighbors,
    /// so the table is tiny and binary search beats hashing; the switch
    /// from unordered_map also drops ~100 B of empty-map overhead per
    /// context — real memory when 64k ranks each hold a store with several
    /// contexts. unique_ptr keeps every Bin address-stable across inserts
    /// for the cache below and for find_unexpected's bin pointers.
    std::vector<std::pair<int, std::unique_ptr<Bin>>> by_src;
    std::vector<Posted> wildcard;  ///< ANY_SOURCE receives, post order

    // One-entry lookup cache: hot paths hammer a single (context, src)
    // pair (ping-pong, a collective's fixed neighbor); the cached pointer
    // stays valid for the store's lifetime (bins are never erased).
    // Guarded by the store mutex.
    int cached_src = kAnySource;
    Bin* cached_bin = nullptr;

    [[nodiscard]] auto lower_bound(int src) {
      return std::lower_bound(
          by_src.begin(), by_src.end(), src,
          [](const auto& entry, int s) { return entry.first < s; });
    }
    [[nodiscard]] Bin* find(int src) {
      if (src == cached_src) return cached_bin;
      const auto it = lower_bound(src);
      if (it == by_src.end() || it->first != src) return nullptr;
      cached_src = src;
      cached_bin = it->second.get();
      return cached_bin;
    }
    [[nodiscard]] Bin& get(int src) {
      if (src == cached_src) return *cached_bin;
      auto it = lower_bound(src);
      if (it == by_src.end() || it->first != src) {
        it = by_src.emplace(it, src, std::make_unique<Bin>());
      }
      cached_src = src;
      cached_bin = it->second.get();
      return *cached_bin;
    }
  };

  struct Waiter {
    enum class Want : std::uint8_t { kAny, kResult, kProbe };
    sched::Waiter parker;
    Want want = Want::kAny;
    const RecvResult* result = nullptr;
    const MatchPattern* pattern = nullptr;
  };

  /// A watch_recv registration: like a Want::kResult waiter, but owned by
  /// the caller and never erased by wake paths (only unwatch removes it).
  struct Watch {
    const RecvResult* result = nullptr;
    sched::Waiter* parker = nullptr;
  };

  static void complete_posted(const Posted& p, int src, int tag,
                              SimTime arrival_ns,
                              std::span<const std::byte> payload);

  [[nodiscard]] ContextBins* find_context(ContextId context)
      MANATEE_REQUIRES(mutex_);
  [[nodiscard]] ContextBins& context_for(ContextId context)
      MANATEE_REQUIRES(mutex_);
  [[nodiscard]] Bin& bin_for(ContextId context, int src)
      MANATEE_REQUIRES(mutex_);
  /// Shared delivery body (deliver / deliver_bytes). `staged` is the
  /// caller's pre-built envelope to enqueue on an unexpected miss (null:
  /// materialize one from the pool).
  void deliver_locked(ContextId context, int src, int tag, SimTime arrival_ns,
                      std::span<const std::byte> payload, TrafficClass traffic,
                      Envelope* staged) MANATEE_REQUIRES(mutex_);
  /// Pops the matching posted receive with the lowest post_seq (bin +
  /// wildcard merged), if any.
  bool pop_matching_posted(ContextId context, int src, int tag, Posted* out)
      MANATEE_REQUIRES(mutex_);
  /// First unexpected envelope matching `pattern` across bins (lowest seq);
  /// returns bin + index, or false.
  bool find_unexpected(const MatchPattern& pattern, Bin** bin_out,
                       std::size_t* index_out) MANATEE_REQUIRES(mutex_);
  /// Pops the first matching unexpected envelope into `dest`, completing
  /// `result` (the shared body of post_recv's eager match and
  /// try_recv_unexpected).
  bool try_complete_from_unexpected_locked(const MatchPattern& pattern,
                                           std::byte* dest,
                                           std::size_t capacity,
                                           RecvResult* result)
      MANATEE_REQUIRES(mutex_);

  void wake_all_locked() MANATEE_REQUIRES(mutex_);
  void wake_for_result_locked(const RecvResult* result)
      MANATEE_REQUIRES(mutex_);
  void wake_for_unexpected_locked(const Envelope& env)
      MANATEE_REQUIRES(mutex_);
  /// Registers `waiter`, blocks until pred() holds (watchdog-guarded),
  /// deregisters. mutex_ is released while parked and re-held on return.
  void wait_on_locked(Waiter& waiter, common::FunctionRef<bool()> pred,
                      const char* what) MANATEE_REQUIRES(mutex_);
  [[nodiscard]] std::string wait_diagnostics_locked(const char* what) const
      MANATEE_REQUIRES(mutex_);

  BufferPool* pool_;  ///< set once at construction, immutable afterwards
  // The store's interest mutex (lock level 60 in scripts/lock_order.json):
  // guards the two-queue matching structure, the waiter list, and every
  // counter. Park/notify go through sched::Waiter while it is held; pool
  // blocks for unexpected payloads are acquired under it (level 30).
  mutable common::Mutex mutex_;
  /// (context → bins), sorted: same diet as ContextBins::by_src (a store
  /// sees a handful of contexts). unique_ptr keeps ContextBins
  /// address-stable for the cache below.
  std::vector<std::pair<ContextId, std::unique_ptr<ContextBins>>> contexts_
      MANATEE_GUARDED_BY(mutex_);
  ContextId cached_context_id_ MANATEE_GUARDED_BY(mutex_) = 0;
  /// One-entry context cache (nodes are address-stable).
  ContextBins* cached_context_ MANATEE_GUARDED_BY(mutex_) = nullptr;
  std::vector<Waiter*> waiters_ MANATEE_GUARDED_BY(mutex_);
  std::vector<Watch> watches_ MANATEE_GUARDED_BY(mutex_);
  std::size_t posted_count_ MANATEE_GUARDED_BY(mutex_) = 0;
  std::size_t unexpected_count_ MANATEE_GUARDED_BY(mutex_) = 0;
  std::uint64_t next_post_seq_ MANATEE_GUARDED_BY(mutex_) = 0;
  /// Arrival order, counts up.
  std::int64_t next_seq_ MANATEE_GUARDED_BY(mutex_) = 0;
  /// Restart injection, counts down.
  std::int64_t next_front_seq_ MANATEE_GUARDED_BY(mutex_) = -1;
  std::uint64_t eager_completions_ MANATEE_GUARDED_BY(mutex_) = 0;
  /// Written under mutex_ (delivery path) with relaxed atomics so
  /// Fabric::counters can fold all stores without taking any lock.
  struct AtomicTraffic {
    std::atomic<std::uint64_t> messages{0};
    std::atomic<std::uint64_t> bytes{0};
  };
  AtomicTraffic traffic_[kTrafficClassCount];
  std::uint64_t delivered_messages_ MANATEE_GUARDED_BY(mutex_) = 0;
  std::uint64_t delivered_bytes_ MANATEE_GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ MANATEE_GUARDED_BY(mutex_) = 0;
};

}  // namespace manatee::simnet
