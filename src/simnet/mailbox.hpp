// mailbox.hpp — per-rank message store with MPI-semantics matching.
//
// Implements the standard two-queue structure of real MPI libraries:
//   * posted-receive queue: receives waiting for a message;
//   * unexpected queue: messages that arrived before a matching receive.
// Matching is eager: a delivered envelope is matched against posted
// receives in post order; a posted receive is matched against unexpected
// messages in arrival order. This preserves MPI's non-overtaking rule.
//
// The store also provides the blocking primitive every higher layer uses:
// wait(pred) sleeps on the store's condition variable until pred() holds,
// with a global watchdog timeout that converts distributed deadlock into a
// loud RuntimeFault instead of a hung test suite.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "simnet/message.hpp"

namespace manatee::simnet {

/// Result of a successful (I)Probe: metadata of the first matching message.
struct ProbeInfo {
  int src = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
  SimTime arrival_ns = 0;
};

class MessageStore {
 public:
  /// Watchdog for blocking waits, in milliseconds of *wall* time. Applies
  /// process-wide; tests lower it to fail fast on real deadlocks.
  static void set_wait_timeout_ms(long ms) noexcept;
  static long wait_timeout_ms() noexcept;

  /// Deliver a message into this store (called from the sender's thread).
  /// If a posted receive matches, the payload is copied into its buffer and
  /// its RecvResult completed in place; otherwise the envelope joins the
  /// unexpected queue.
  void deliver(Envelope&& env);

  /// Post a receive. `result` must stay alive until completion or cancel.
  /// If an unexpected message already matches, completes immediately.
  void post_recv(const MatchPattern& pattern, std::byte* dest,
                 std::size_t capacity, RecvResult* result);

  /// Remove a posted-but-unmatched receive. Returns false if it already
  /// completed (or was never posted).
  bool cancel_recv(const RecvResult* result);

  /// Non-blocking probe of the unexpected queue.
  [[nodiscard]] std::optional<ProbeInfo> iprobe(const MatchPattern& pattern);

  /// Pop the first unexpected message matching `pattern` into `dest`,
  /// completing `result`. Returns false (leaving `result` untouched) if
  /// nothing matches.
  bool try_recv_unexpected(const MatchPattern& pattern, std::byte* dest,
                           std::size_t capacity, RecvResult* result);

  /// Block until pred() is true. pred is evaluated under the store lock and
  /// re-checked on every delivery and on notify(). Throws RuntimeFault when
  /// the watchdog expires.
  void wait(const std::function<bool()>& pred);

  /// Wake all waiters (used by out-of-band state changes, e.g. the
  /// checkpoint coordinator flipping a flag the waiter's pred reads).
  /// Bumps the generation counter so wait_changed() observers also wake.
  void notify();

  /// Run `fn` under the store mutex, excluding concurrent deliveries: a
  /// caller that must consistently read buffers targeted by posted
  /// receives (the checkpoint registry's shadow sync) runs inside. `fn`
  /// must not call back into this store.
  void with_delivery_lock(const std::function<void()>& fn);

  /// Snapshot of "has anything happened" state, for poll-style loops
  /// (progress engines, blocking probe). Take a token, poll your condition,
  /// and if unsatisfied call wait_changed(token): it returns as soon as any
  /// delivery or notify() occurred after the token was taken.
  struct WakeToken {
    std::uint64_t deliveries = 0;
    std::uint64_t generation = 0;
  };
  [[nodiscard]] WakeToken token() const;
  void wait_changed(const WakeToken& since);

  // --- checkpoint support ---

  /// Copy of all unexpected envelopes satisfying `keep` (in queue order).
  [[nodiscard]] std::vector<Envelope> snapshot_unexpected(
      const std::function<bool(const Envelope&)>& keep) const;

  /// Number of unexpected envelopes satisfying `keep`.
  [[nodiscard]] std::size_t count_unexpected(
      const std::function<bool(const Envelope&)>& keep) const;

  /// Append saved envelopes (restart path: re-inject drained messages).
  void inject(std::vector<Envelope> messages);

  // --- stats ---
  [[nodiscard]] std::uint64_t delivered_messages() const noexcept;
  [[nodiscard]] std::uint64_t delivered_bytes() const noexcept;

 private:
  struct Posted {
    MatchPattern pattern;
    std::byte* dest = nullptr;
    std::size_t capacity = 0;
    RecvResult* result = nullptr;
  };

  static void complete(const Posted& p, Envelope& env);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Posted> posted_;
  std::deque<Envelope> unexpected_;
  std::uint64_t delivered_messages_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace manatee::simnet
