#include "common/crc32.hpp"

#include <array>

namespace manatee {
namespace {

constexpr std::array<std::uint32_t, 256> make_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

void Crc32::update(std::span<const std::byte> bytes) noexcept {
  std::uint32_t c = state_;
  for (std::byte b : bytes) {
    c = kTable[(c ^ static_cast<std::uint8_t>(b)) & 0xffu] ^ (c >> 8);
  }
  state_ = c;
}

}  // namespace manatee
