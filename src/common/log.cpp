#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/mutex.hpp"

namespace manatee::log_detail {
namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized
common::Mutex g_emit_mutex;  // lock level 10: leaf — emit() takes no other lock

thread_local std::string t_thread_label = "-";
// Active label slot: null means "this thread's own label"; the fiber
// scheduler points it at the running fiber's label across switches.
thread_local std::string* t_label_slot = nullptr;

std::string& label_ref() noexcept {
  return t_label_slot != nullptr ? *t_label_slot : t_thread_label;
}

LogLevel level_from_env() noexcept {
  const char* env = std::getenv("MANATEE_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  return LogLevel::kWarn;
}

const char* tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
  }
  return "?";
}

}  // namespace

LogLevel current_level() noexcept {
  int lvl = g_level.load(std::memory_order_relaxed);
  if (lvl < 0) {
    lvl = static_cast<int>(level_from_env());
    g_level.store(lvl, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(lvl);
}

void set_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void emit(LogLevel level, const std::string& msg) {
  const std::string& label = label_ref();
  common::MutexLock lock(g_emit_mutex);
  std::fprintf(stderr, "[manatee %s] [%s] %s\n", tag(level), label.c_str(),
               msg.c_str());
}

void set_thread_label(std::string label) { label_ref() = std::move(label); }

const std::string& thread_label() noexcept { return label_ref(); }

std::string* exchange_label_slot(std::string* slot) noexcept {
  std::string* prev = t_label_slot;
  t_label_slot = slot;
  return prev;
}

}  // namespace manatee::log_detail
