// thread_annotations.hpp — Clang thread-safety-analysis macros.
//
// These wrap Clang's capability attributes (-Wthread-safety) so the
// locking rules of the concurrent core — "counters sharded under the
// delivery lock", "park/notify under the store's interest mutex", "the
// scheduler's ready deque under the backend mutex" — are checked at
// compile time instead of living in comments and TSan interleavings.
// The static-analysis CI job builds with
//   -Werror=thread-safety -Werror=thread-safety-beta
// so a violation is a build error; on GCC (which has no such analysis)
// every macro expands to nothing and the annotated code is unchanged.
//
// Conventions (DESIGN.md §9):
//   * mutexes are common::Mutex (common/mutex.hpp), never raw std::mutex
//     — scripts/manatee_lint.py enforces this;
//   * every field a mutex protects carries MANATEE_GUARDED_BY(mutex_);
//   * private helpers that assume the lock carry MANATEE_REQUIRES(mutex_)
//     and, by convention, a name ending in `_locked` (the linter uses the
//     suffix to derive held-sets for its lock-order check);
//   * MANATEE_NO_THREAD_SAFETY_ANALYSIS is an escape hatch of last resort
//     and every use must carry a one-line justification comment.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define MANATEE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MANATEE_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// A type that is a lockable capability ("mutex").
#define MANATEE_CAPABILITY(x) MANATEE_THREAD_ANNOTATION(capability(x))

/// A RAII type that acquires a capability in its constructor and releases
/// it in its destructor (std::lock_guard shape).
#define MANATEE_SCOPED_CAPABILITY MANATEE_THREAD_ANNOTATION(scoped_lockable)

/// Field or variable readable/writable only with `x` held.
#define MANATEE_GUARDED_BY(x) MANATEE_THREAD_ANNOTATION(guarded_by(x))

/// Pointer whose *pointee* is protected by `x` (the pointer itself is not).
#define MANATEE_PT_GUARDED_BY(x) MANATEE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the listed capabilities held
/// (exclusively / shared) and returns with them still held.
#define MANATEE_REQUIRES(...) \
  MANATEE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MANATEE_REQUIRES_SHARED(...) \
  MANATEE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function that acquires / releases the listed capabilities. With no
/// argument (on a capability type's own methods) it refers to `this`.
#define MANATEE_ACQUIRE(...) \
  MANATEE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MANATEE_ACQUIRE_SHARED(...) \
  MANATEE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define MANATEE_RELEASE(...) \
  MANATEE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MANATEE_RELEASE_SHARED(...) \
  MANATEE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// try_lock-shaped function: acquires the capability iff it returns `b`.
#define MANATEE_TRY_ACQUIRE(...) \
  MANATEE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function that must be called with the listed capabilities NOT held
/// (deadlock guard for self-locking public entry points).
#define MANATEE_EXCLUDES(...) MANATEE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declared acquisition order between mutex members (checked under
/// -Wthread-safety-beta). The machine-readable project-wide order lives in
/// scripts/lock_order.json; use these for same-class member pairs.
#define MANATEE_ACQUIRED_BEFORE(...) \
  MANATEE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define MANATEE_ACQUIRED_AFTER(...) \
  MANATEE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returning a reference to a capability (lock accessors).
#define MANATEE_RETURN_CAPABILITY(x) MANATEE_THREAD_ANNOTATION(lock_returned(x))

/// Assertion that the calling context holds the capability (for call
/// graphs the analysis cannot follow, e.g. lambdas invoked under a lock —
/// see common::Mutex::assert_held). No argument means `this`.
#define MANATEE_ASSERT_CAPABILITY(...) \
  MANATEE_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))

/// Escape hatch: disable the analysis for one function. Every use MUST
/// carry a one-line comment explaining why the analysis cannot see the
/// invariant (scripts/manatee_lint.py flags undocumented uses).
#define MANATEE_NO_THREAD_SAFETY_ANALYSIS \
  MANATEE_THREAD_ANNOTATION(no_thread_safety_analysis)
