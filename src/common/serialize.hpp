// serialize.hpp — self-describing binary archive used by the checkpoint
// image format and the record-replay log.
//
// Every value is preceded by a one-byte type tag so that truncated or
// corrupted images fail loudly (SerializeError) instead of silently
// misreading. The format is little-endian and fixed-width, so images are
// portable across runs.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace manatee {

enum class WireTag : std::uint8_t {
  kU8 = 1,
  kU32 = 2,
  kU64 = 3,
  kI64 = 4,
  kF64 = 5,
  kBytes = 6,
  kString = 7,
  kListBegin = 8,
  kMapBegin = 9,
};

/// Append-only binary writer.
class BinaryWriter {
 public:
  void write_u8(std::uint8_t v) { tag(WireTag::kU8); raw(&v, sizeof v); }
  void write_u32(std::uint32_t v) { tag(WireTag::kU32); raw(&v, sizeof v); }
  void write_u64(std::uint64_t v) { tag(WireTag::kU64); raw(&v, sizeof v); }
  void write_i64(std::int64_t v) { tag(WireTag::kI64); raw(&v, sizeof v); }
  void write_f64(double v) { tag(WireTag::kF64); raw(&v, sizeof v); }

  void write_bytes(std::span<const std::byte> bytes) {
    tag(WireTag::kBytes);
    const auto n = static_cast<std::uint64_t>(bytes.size());
    raw(&n, sizeof n);
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  void write_string(std::string_view s) {
    tag(WireTag::kString);
    const auto n = static_cast<std::uint64_t>(s.size());
    raw(&n, sizeof n);
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }

  /// Vector of trivially-copyable elements, stored as one bytes blob.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write_pod_vector(const std::vector<T>& v) {
    write_bytes(std::as_bytes(std::span(v.data(), v.size())));
  }

  /// Begin a list of `n` heterogeneous entries (caller writes them next).
  void begin_list(std::uint64_t n) { tag(WireTag::kListBegin); raw(&n, sizeof n); }

  /// Begin a map of `n` key/value pairs (caller writes alternating k, v).
  void begin_map(std::uint64_t n) { tag(WireTag::kMapBegin); raw(&n, sizeof n); }

  /// Convenience: map<u64, u64> (the SEQ / TARGET tables).
  void write_u64_map(const std::map<std::uint64_t, std::uint64_t>& m) {
    begin_map(m.size());
    for (const auto& [k, v] : m) {
      write_u64(k);
      write_u64(v);
    }
  }

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() noexcept { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  void tag(WireTag t) { buf_.push_back(static_cast<std::byte>(t)); }
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<std::byte> buf_;
};

/// Bounds- and tag-checked reader over a byte span. The span must outlive
/// the reader.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::byte> bytes) : data_(bytes) {}

  std::uint8_t read_u8() { return read_fixed<std::uint8_t>(WireTag::kU8); }
  std::uint32_t read_u32() { return read_fixed<std::uint32_t>(WireTag::kU32); }
  std::uint64_t read_u64() { return read_fixed<std::uint64_t>(WireTag::kU64); }
  std::int64_t read_i64() { return read_fixed<std::int64_t>(WireTag::kI64); }
  double read_f64() { return read_fixed<double>(WireTag::kF64); }

  std::vector<std::byte> read_bytes() {
    expect(WireTag::kBytes);
    const auto n = read_raw<std::uint64_t>();
    check_remaining(n, "bytes payload");
    std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                               data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::string read_string() {
    expect(WireTag::kString);
    const auto n = read_raw<std::uint64_t>();
    check_remaining(n, "string payload");
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return out;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> read_pod_vector() {
    const auto raw = read_bytes();
    if (raw.size() % sizeof(T) != 0) {
      throw SerializeError("pod vector size not a multiple of element size");
    }
    std::vector<T> out(raw.size() / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  std::uint64_t read_list_size() {
    expect(WireTag::kListBegin);
    return read_raw<std::uint64_t>();
  }

  std::uint64_t read_map_size() {
    expect(WireTag::kMapBegin);
    return read_raw<std::uint64_t>();
  }

  std::map<std::uint64_t, std::uint64_t> read_u64_map() {
    const auto n = read_map_size();
    std::map<std::uint64_t, std::uint64_t> m;
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto k = read_u64();
      const auto v = read_u64();
      m.emplace(k, v);
    }
    return m;
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  void expect(WireTag want) {
    check_remaining(1, "type tag");
    const auto got = static_cast<WireTag>(data_[pos_]);
    ++pos_;
    if (got != want) {
      throw SerializeError("type tag mismatch: wanted " +
                           std::to_string(static_cast<int>(want)) + ", got " +
                           std::to_string(static_cast<int>(got)) + " at offset " +
                           std::to_string(pos_ - 1));
    }
  }

  template <typename T>
  T read_raw() {
    check_remaining(sizeof(T), "fixed-width value");
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  T read_fixed(WireTag t) {
    expect(t);
    return read_raw<T>();
  }

  void check_remaining(std::size_t need, const char* what) const {
    if (data_.size() - pos_ < need) {
      throw SerializeError(std::string("truncated archive reading ") + what);
    }
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace manatee
