#include "common/options.hpp"

#include <cstdlib>
#include <string_view>

#include "common/error.hpp"

namespace manatee {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      values_.emplace(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
      continue;
    }
    // `--name value` when the next token is not itself an option;
    // otherwise a boolean flag.
    if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      values_.emplace(std::string(arg), std::string(argv[i + 1]));
      ++i;
    } else {
      values_.emplace(std::string(arg), "true");
    }
  }
}

bool Options::has(const std::string& name) const { return values_.contains(name); }

std::string Options::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const auto v = std::strtoll(it->second.c_str(), &end, 10);
  MANATEE_REQUIRE(end != it->second.c_str() && *end == '\0',
                  "option --" + name + " is not an integer: " + it->second);
  return v;
}

double Options::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const auto v = std::strtod(it->second.c_str(), &end);
  MANATEE_REQUIRE(end != it->second.c_str() && *end == '\0',
                  "option --" + name + " is not a number: " + it->second);
  return v;
}

bool Options::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace manatee
