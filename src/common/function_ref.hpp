// function_ref.hpp — a non-owning, non-allocating callable reference.
//
// std::function on a hot path costs a potential heap allocation at every
// construction and an indirect call through type-erased storage. The
// MessageStore primitives (wait predicates, delivery-lock sections,
// snapshot filters) only ever *borrow* a callable for the duration of one
// synchronous call, so a two-word {object pointer, trampoline} reference is
// enough — the C++26 std::function_ref shape, reduced to what this codebase
// needs.
//
// Lifetime rule: a FunctionRef must not outlive the callable it was built
// from. Every use in this repo passes a lambda down one synchronous call —
// never store a FunctionRef in a member.
#pragma once

#include <type_traits>
#include <utility>

namespace manatee::common {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
             std::is_invocable_r_v<R, F&, Args...>)
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return static_cast<R>((*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...));
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace manatee::common
