// rng.hpp — deterministic, serializable pseudo-random number generator.
//
// Workloads and property tests must be reproducible across (a) repeated
// runs and (b) checkpoint/restart boundaries, so the full RNG state is a
// single 64-bit word that the checkpoint registry can save and restore.
#pragma once

#include <cstdint>
#include <limits>

#include "common/hash.hpp"

namespace manatee {

/// splitmix64 generator: tiny state, excellent statistical quality for
/// workload-generation purposes, trivially checkpointable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept
      : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept { return mix64(state_++); }

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Rejection-free multiply-shift (Lemire); bias is negligible for our
    // bounds (<= 2^32) but we use 128-bit multiply to be exact enough.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next_u64()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p = 0.5) noexcept { return next_double() < p; }

  /// Full generator state, for checkpointing.
  [[nodiscard]] std::uint64_t state() const noexcept { return state_; }
  void set_state(std::uint64_t s) noexcept { state_ = s; }

 private:
  std::uint64_t state_;
};

}  // namespace manatee
