// mutex.hpp — the project mutex: std::mutex wrapped as an annotated Clang
// capability, plus the RAII guard every locking site uses.
//
// All mutexes in src/ are common::Mutex (scripts/manatee_lint.py rejects
// raw std::mutex), every mutex is registered with a level in
// scripts/lock_order.json, and all acquisition is through MutexLock —
// bare lock()/unlock() pairs are reserved for the two blocking chokepoints
// (sched::Waiter::park_until and the FiberBackend worker loop) where lock
// ownership crosses a suspension point.
//
// native() exists solely so those chokepoints can run a
// std::condition_variable wait over the wrapped mutex (std::adopt_lock in,
// release() out). It is not an API: the linter's `native-handle` rule
// rejects any other caller, because a park site that bypasses
// sched::Waiter breaks the fiber backend (the rank would block its worker
// thread instead of suspending).
#pragma once

#include <mutex>

#include "common/thread_annotations.hpp"

namespace manatee::common {

class MANATEE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MANATEE_ACQUIRE() { m_.lock(); }
  void unlock() MANATEE_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() MANATEE_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

  /// Tell the analysis this context holds the mutex. For code paths the
  /// analysis cannot follow — above all, predicate lambdas handed to
  /// MessageStore's wait primitives, which the store evaluates under its
  /// own lock. Compiles to nothing; use only where holding is a documented
  /// caller contract.
  void assert_held() const MANATEE_ASSERT_CAPABILITY() {}

  /// The wrapped mutex, for condition-variable waits inside the scheduler
  /// only (see file comment). Ownership stays with the annotated wrapper.
  [[nodiscard]] std::mutex& native() noexcept { return m_; }

 private:
  std::mutex m_;
};

/// RAII guard (std::lock_guard shape) carrying the scoped-capability
/// annotation: the analysis treats the guarded region as holding `mu`.
class MANATEE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MANATEE_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() MANATEE_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace manatee::common
