// crc32.hpp — CRC-32 (IEEE 802.3 polynomial) for checkpoint-image
// integrity. Table-driven, incremental interface so images can be
// checksummed while streaming.
#pragma once

#include <cstdint>
#include <span>

namespace manatee {

/// Incremental CRC-32 accumulator.
class Crc32 {
 public:
  /// Feed bytes into the checksum.
  void update(std::span<const std::byte> bytes) noexcept;

  /// Final checksum value for everything fed so far.
  [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }

  /// One-shot convenience.
  static std::uint32_t of(std::span<const std::byte> bytes) noexcept {
    Crc32 c;
    c.update(bytes);
    return c.value();
  }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

}  // namespace manatee
