// error.hpp — exception hierarchy and status codes shared across MANATEE.
//
// MANATEE follows the C++ Core Guidelines error-handling advice (E.2, E.14):
// throw exceptions for errors that cannot be handled locally, use dedicated
// user-defined types per failure domain, and keep the what() string
// actionable.
#pragma once

#include <stdexcept>
#include <string>

namespace manatee {

/// Base class for every error thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Programming errors: invalid arguments, API misuse (e.g. rank out of
/// range, mismatched collective participation). These indicate a bug in the
/// caller, mirroring MPI_ERR_ARG-class failures.
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error("usage error: " + what) {}
};

/// Errors in the simulated MPI runtime itself (deadlock detected, rank
/// thread died, runtime torn down while operations pending).
class RuntimeFault : public Error {
 public:
  explicit RuntimeFault(const std::string& what) : Error("runtime fault: " + what) {}
};

/// Checkpoint/restart failures: bad image file, CRC mismatch, version skew,
/// drain protocol violation.
class CheckpointError : public Error {
 public:
  explicit CheckpointError(const std::string& what)
      : Error("checkpoint error: " + what) {}
};

/// Serialization failures: truncated buffers, type tag mismatch.
class SerializeError : public Error {
 public:
  explicit SerializeError(const std::string& what)
      : Error("serialize error: " + what) {}
};

/// Control-flow signal (not an error): the job is shutting down after a
/// completed checkpoint (chained-allocation stop). Thrown out of blocking
/// waits so ranks blocked on already-stopped peers unwind; the engine
/// treats it exactly like a voluntary stop.
struct JobStopping {};

/// MANATEE_REQUIRE — precondition check that throws UsageError.
/// Used at public API boundaries (Core Guidelines I.5: state preconditions).
#define MANATEE_REQUIRE(cond, msg)                  \
  do {                                              \
    if (!(cond)) {                                  \
      throw ::manatee::UsageError(std::string(msg) + \
                                  " [" #cond "]");  \
    }                                               \
  } while (0)

/// MANATEE_CHECK — internal invariant check that throws RuntimeFault.
#define MANATEE_CHECK(cond, msg)                      \
  do {                                                \
    if (!(cond)) {                                    \
      throw ::manatee::RuntimeFault(std::string(msg) + \
                                    " [" #cond "]");  \
    }                                                 \
  } while (0)

}  // namespace manatee
