// hash.hpp — deterministic 64-bit hashing used for global group ids and
// result fingerprinting. Header-only; all functions are constexpr-friendly
// and allocation-free.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

namespace manatee {

/// splitmix64 finalizer — a strong 64-bit mixing function. Used as the
/// building block for order-dependent and order-independent hashes.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over raw bytes. Order-dependent; good for fingerprinting buffers.
constexpr std::uint64_t fnv1a(std::span<const std::byte> bytes,
                              std::uint64_t seed = 0xcbf29ce484222325ULL) noexcept {
  std::uint64_t h = seed;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline std::uint64_t fnv1a(std::string_view s) noexcept {
  return fnv1a(std::as_bytes(std::span(s.data(), s.size())));
}

/// Combine two hashes order-dependently (boost::hash_combine style, 64-bit).
constexpr std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) noexcept {
  return h ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4));
}

/// Fingerprint accumulator for verifying bit-identical results across
/// native vs checkpoint-restart runs. Order-dependent on purpose: the
/// sequence of values must match exactly.
class Fingerprint {
 public:
  void add(std::span<const std::byte> bytes) noexcept { h_ = fnv1a(bytes, h_); }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void add_value(const T& v) noexcept {
    add(std::as_bytes(std::span(&v, 1)));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void add_range(std::span<const T> vs) noexcept {
    add(std::as_bytes(vs));
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

}  // namespace manatee
