// stats.hpp — streaming statistics accumulators for benchmark reporting
// (mean, stddev, min/max) matching the paper's "averaged over 5 runs with
// standard deviation" methodology.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace manatee {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Runtime overhead of `measured` relative to `baseline`, as a percentage
/// — the quantity plotted on the y-axis of Figures 5 and 8.
inline double overhead_pct(double baseline, double measured) noexcept {
  if (baseline <= 0.0) return 0.0;
  return (measured - baseline) / baseline * 100.0;
}

}  // namespace manatee
