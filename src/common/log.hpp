// log.hpp — minimal thread-safe leveled logger.
//
// Rank threads, the coordinator thread, and the test harness all log
// concurrently; lines are serialized through one mutex so output is never
// interleaved. Level is process-global and settable from the MANATEE_LOG
// environment variable (error|warn|info|debug|trace).
#pragma once

#include <sstream>
#include <string>

namespace manatee {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

namespace log_detail {

/// Current process-wide level. Initialized from MANATEE_LOG on first use.
LogLevel current_level() noexcept;
void set_level(LogLevel level) noexcept;

/// Emit one already-formatted line (adds level tag + thread label).
void emit(LogLevel level, const std::string& msg);

/// Per-context label shown in log lines ("rank 3", "coord", ...). The
/// label lives behind a thread-local *slot pointer*: by default the slot
/// targets a per-OS-thread string, but the fiber scheduler repoints it at
/// the running fiber's own label around every context switch, so
/// set_thread_label / thread_label are fiber-local on multiplexed ranks
/// (and unchanged for plain threads) with zero string copies per switch.
void set_thread_label(std::string label);
const std::string& thread_label() noexcept;

/// Redirect this thread's label slot (nullptr = the thread's own label).
/// Returns the previous slot so schedulers can restore it. Internal — used
/// by sched::FiberBackend on context switches.
std::string* exchange_label_slot(std::string* slot) noexcept;

}  // namespace log_detail

inline void set_log_level(LogLevel level) noexcept { log_detail::set_level(level); }

inline bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) <= static_cast<int>(log_detail::current_level());
}

/// Label the calling thread for all subsequent log lines.
inline void set_log_thread_label(std::string label) {
  log_detail::set_thread_label(std::move(label));
}

// Streaming macros: arguments are not evaluated when the level is disabled.
#define MANATEE_LOG_AT(level, expr)                          \
  do {                                                       \
    if (::manatee::log_enabled(level)) {                     \
      std::ostringstream manatee_log_os;                     \
      manatee_log_os << expr;                                \
      ::manatee::log_detail::emit(level, manatee_log_os.str()); \
    }                                                        \
  } while (0)

#define LOG_ERROR(expr) MANATEE_LOG_AT(::manatee::LogLevel::kError, expr)
#define LOG_WARN(expr) MANATEE_LOG_AT(::manatee::LogLevel::kWarn, expr)
#define LOG_INFO(expr) MANATEE_LOG_AT(::manatee::LogLevel::kInfo, expr)
#define LOG_DEBUG(expr) MANATEE_LOG_AT(::manatee::LogLevel::kDebug, expr)
#define LOG_TRACE(expr) MANATEE_LOG_AT(::manatee::LogLevel::kTrace, expr)

}  // namespace manatee
