#include "sched/fiber.hpp"

#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

// ---- sanitizer detection ----------------------------------------------------

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MANATEE_ASAN_FIBERS 1
#endif
#if __has_feature(thread_sanitizer)
#define MANATEE_TSAN_FIBERS 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) && !defined(MANATEE_ASAN_FIBERS)
#define MANATEE_ASAN_FIBERS 1
#endif
#if defined(__SANITIZE_THREAD__) && !defined(MANATEE_TSAN_FIBERS)
#define MANATEE_TSAN_FIBERS 1
#endif

#if defined(MANATEE_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(MANATEE_TSAN_FIBERS)
#include <sanitizer/tsan_interface.h>
#endif
#if defined(MANATEE_ASAN_FIBERS) || defined(MANATEE_TSAN_FIBERS)
#include <pthread.h>
#endif

// ---- context-switch backend selection ---------------------------------------
//
// x86-64: hand-rolled assembly switch (saves the SysV callee-saved set plus
// the FP control words; ~20 instructions, no syscall). Everything else:
// POSIX ucontext (correct by construction, one sigprocmask syscall per
// switch). MANATEE_FIBER_FORCE_UCONTEXT forces the fallback for testing.

#if defined(__x86_64__) && !defined(MANATEE_FIBER_FORCE_UCONTEXT)
#define MANATEE_FIBER_ASM_X86_64 1
#else
#include <ucontext.h>
#endif

namespace manatee::sched::detail {
namespace {

[[noreturn]] void fiber_first_entry(Fiber* fiber) {
#if defined(MANATEE_ASAN_FIBERS)
  // First activation: there is no previous start_switch in this context.
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
  fiber_entry(fiber);
}

}  // namespace
}  // namespace manatee::sched::detail

#if defined(MANATEE_FIBER_ASM_X86_64)

// Saved frame layout (descending addresses, matching push order):
//   [sp+56] return address        [sp+40] rbx   [sp+24] r13   [sp+8]  r15
//   [sp+48] rbp                   [sp+32] r12   [sp+16] r14   [sp+0]  mxcsr:fcw
asm(R"(
.text
.align 16
.globl manatee_fiber_switch
.hidden manatee_fiber_switch
.type manatee_fiber_switch,@function
manatee_fiber_switch:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    subq $8, %rsp
    stmxcsr 0(%rsp)
    fnstcw 4(%rsp)
    movq %rsp, (%rdi)
    movq %rsi, %rsp
    ldmxcsr 0(%rsp)
    fldcw 4(%rsp)
    addq $8, %rsp
    popq %r15
    popq %r14
    popq %r13
    popq %r12
    popq %rbx
    popq %rbp
    retq
.size manatee_fiber_switch,.-manatee_fiber_switch

.align 16
.globl manatee_fiber_trampoline
.hidden manatee_fiber_trampoline
.type manatee_fiber_trampoline,@function
manatee_fiber_trampoline:
    movq %r12, %rdi
    xorl %ebp, %ebp
    callq manatee_fiber_entry_thunk@PLT
    ud2
.size manatee_fiber_trampoline,.-manatee_fiber_trampoline
)");

extern "C" {
void manatee_fiber_switch(void** save_sp, void* resume_sp);
void manatee_fiber_trampoline();

[[noreturn]] void manatee_fiber_entry_thunk(void* fiber) {
  manatee::sched::detail::fiber_first_entry(
      static_cast<manatee::sched::Fiber*>(fiber));
}
}  // extern "C"

#endif  // MANATEE_FIBER_ASM_X86_64

namespace manatee::sched {

// ---- guarded stacks ---------------------------------------------------------

namespace {

std::size_t page_size() {
  static const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return page;
}

}  // namespace

StackPool::StackPool(std::size_t stack_bytes, bool slabbed)
    : stack_bytes_(stack_bytes), slabbed_(slabbed) {
  MANATEE_REQUIRE(stack_bytes_ >= 4 * page_size(),
                  "fiber stacks need at least four pages");
}

StackPool::~StackPool() {
  if (slabbed_) {
    // Slab stacks are carved, never individually unmapped.
    for (const auto& [base, bytes] : slabs_) ::munmap(base, bytes);
    return;
  }
  for (const auto& tier : tiers_) {
    for (const StackAllocation& s : tier) ::munmap(s.base, s.size);
  }
}

int StackPool::tier_of(std::size_t high_water_bytes) noexcept {
  if (high_water_bytes <= 16 * 1024) return 0;
  if (high_water_bytes <= 64 * 1024) return 1;
  return 2;
}

StackAllocation StackPool::acquire() {
  // Prefer the shallowest previously-used stack: its committed footprint is
  // smallest, so a fresh fiber starting on it faults in the fewest pages.
  for (auto& tier : tiers_) {
    if (tier.empty()) continue;
    const StackAllocation s = tier.back();
    tier.pop_back();
    ++reused_;
    return s;
  }
  return carve();
}

StackAllocation StackPool::carve() {
  const std::size_t page = page_size();
  const std::size_t usable = (stack_bytes_ + page - 1) / page * page;
  const std::size_t stride = usable + page;  // + gap/guard page below

  ++mapped_;
  StackAllocation s;
  s.size = stride;
  s.slab = slabbed_;
  if (!slabbed_) {
    void* base = ::mmap(nullptr, stride, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
    MANATEE_REQUIRE(base != MAP_FAILED,
                    "fiber stack mmap failed — raise vm.max_map_count, lower "
                    "SchedConfig::stack_bytes, or use MANATEE_SCHED=events "
                    "(slab stacks) for very large worlds");
    MANATEE_REQUIRE(::mprotect(base, page, PROT_NONE) == 0,
                    "fiber stack guard-page mprotect failed");
    s.base = base;
    s.limit = static_cast<std::byte*>(base) + page;
    s.top = static_cast<std::byte*>(base) + stride;
    return s;
  }

  if (carve_left_ == 0) {
    // One VMA per kSlabStacks stacks: MAP_NORESERVE so the untouched bulk
    // (gap pages, never-reached depths) costs neither commit charge nor
    // resident pages. No per-stack mprotect — that would split the VMA and
    // put 64k-rank worlds right back over vm.max_map_count.
    constexpr std::size_t kSlabStacks = 64;
    const std::size_t slab_bytes = stride * kSlabStacks;
    void* base =
        ::mmap(nullptr, slab_bytes, PROT_READ | PROT_WRITE,
               MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK | MAP_NORESERVE, -1, 0);
    MANATEE_REQUIRE(base != MAP_FAILED, "fiber stack slab mmap failed");
    slabs_.emplace_back(base, slab_bytes);
    carve_next_ = static_cast<std::byte*>(base);
    carve_left_ = kSlabStacks;
  }
  s.base = carve_next_;
  s.limit = carve_next_ + page;
  s.top = carve_next_ + stride;
  carve_next_ += stride;
  --carve_left_;
  return s;
}

void StackPool::release(StackAllocation stack, std::size_t high_water_bytes) {
  // The guard word is only readable once its page is committed; a stack
  // that never came within a page of its limit cannot have crossed it.
  if (stack.slab && high_water_bytes + page_size() >= stack.usable()) {
    MANATEE_REQUIRE(detail::stack_guard_intact(stack),
                    "fiber stack overflow detected (slab guard word "
                    "clobbered) — raise SchedConfig::stack_bytes");
  }
  tiers_[tier_of(high_water_bytes)].push_back(stack);
}

// ---- context switching ------------------------------------------------------

namespace detail {

void init_thread_context(ExecContext* ctx) {
  *ctx = ExecContext{};
#if defined(MANATEE_ASAN_FIBERS) || defined(MANATEE_TSAN_FIBERS)
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* addr = nullptr;
    std::size_t size = 0;
    if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
      ctx->stack_limit = addr;
      ctx->stack_size = size;
    }
    pthread_attr_destroy(&attr);
  }
#endif
#if defined(MANATEE_TSAN_FIBERS)
  ctx->tsan_fiber = __tsan_get_current_fiber();
#endif
#if !defined(MANATEE_FIBER_ASM_X86_64)
  ctx->sp = std::calloc(1, sizeof(ucontext_t));
  MANATEE_REQUIRE(ctx->sp != nullptr, "ucontext allocation failed");
#endif
}

void destroy_thread_context(ExecContext* ctx) {
#if !defined(MANATEE_FIBER_ASM_X86_64)
  std::free(ctx->sp);
#endif
  ctx->sp = nullptr;
}

#if defined(MANATEE_FIBER_ASM_X86_64)

void make_fiber_context(Fiber* fiber) {
  ExecContext& ctx = fiber->ctx;
  ctx.stack_limit = fiber->stack.limit;
  ctx.stack_size = fiber->stack.usable();
  ctx.asan_fake_stack = nullptr;
#if defined(MANATEE_TSAN_FIBERS)
  ctx.tsan_fiber = __tsan_create_fiber(0);
#endif
  // Build the initial saved frame so the restore path of
  // manatee_fiber_switch "returns" into the trampoline with r12 = fiber.
  auto top = reinterpret_cast<std::uintptr_t>(fiber->stack.top) & ~15ULL;
  auto* frame = reinterpret_cast<std::uintptr_t*>(top - 64);
  std::memset(frame, 0, 64);
  std::uint32_t mxcsr = 0;
  std::uint16_t fcw = 0;
  asm volatile("stmxcsr %0\n\tfnstcw %1" : "=m"(mxcsr), "=m"(fcw));
  std::memcpy(reinterpret_cast<std::byte*>(frame) + 0, &mxcsr, sizeof(mxcsr));
  std::memcpy(reinterpret_cast<std::byte*>(frame) + 4, &fcw, sizeof(fcw));
  frame[4] = reinterpret_cast<std::uintptr_t>(fiber);  // r12
  frame[7] = reinterpret_cast<std::uintptr_t>(&manatee_fiber_trampoline);
  ctx.sp = frame;
}

namespace {
void raw_switch(ExecContext* from, ExecContext* to) {
  manatee_fiber_switch(&from->sp, to->sp);
}
}  // namespace

#else  // ucontext fallback

void make_fiber_context(Fiber* fiber) {
  ExecContext& ctx = fiber->ctx;
  ctx.stack_limit = fiber->stack.limit;
  ctx.stack_size = fiber->stack.usable();
  ctx.asan_fake_stack = nullptr;
#if defined(MANATEE_TSAN_FIBERS)
  ctx.tsan_fiber = __tsan_create_fiber(0);
#endif
  auto* uc = static_cast<ucontext_t*>(std::calloc(1, sizeof(ucontext_t)));
  MANATEE_REQUIRE(uc != nullptr, "ucontext allocation failed");
  MANATEE_REQUIRE(::getcontext(uc) == 0, "getcontext failed");
  uc->uc_stack.ss_sp = ctx.stack_limit;
  uc->uc_stack.ss_size = ctx.stack_size;
  uc->uc_link = nullptr;
  // makecontext passes ints; split the pointer into two 32-bit halves.
  const auto bits = reinterpret_cast<std::uintptr_t>(fiber);
  const auto lo = static_cast<unsigned>(bits & 0xffffffffu);
  const auto hi = static_cast<unsigned>(bits >> 32);
  ::makecontext(
      uc,
      reinterpret_cast<void (*)()>(+[](unsigned a, unsigned b) {
        const auto ptr = static_cast<std::uintptr_t>(a) |
                         (static_cast<std::uintptr_t>(b) << 32);
        fiber_first_entry(reinterpret_cast<Fiber*>(ptr));
      }),
      2, lo, hi);
  ctx.sp = uc;
}

namespace {
void raw_switch(ExecContext* from, ExecContext* to) {
  MANATEE_REQUIRE(::swapcontext(static_cast<ucontext_t*>(from->sp),
                                static_cast<ucontext_t*>(to->sp)) == 0,
                  "swapcontext failed");
}
}  // namespace

#endif  // context-switch backend

void switch_context(ExecContext* from, ExecContext* to) {
#if defined(MANATEE_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(&from->asan_fake_stack, to->stack_limit,
                                 to->stack_size);
#endif
#if defined(MANATEE_TSAN_FIBERS)
  __tsan_switch_to_fiber(to->tsan_fiber, 0);
#endif
  raw_switch(from, to);
  // Somebody resumed `from`: complete its side of their switch.
#if defined(MANATEE_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(from->asan_fake_stack, nullptr, nullptr);
#endif
}

void switch_context_final(ExecContext* from, ExecContext* to) {
#if defined(MANATEE_ASAN_FIBERS)
  // nullptr fake-stack save: ASan retires the dying fiber's fake stack.
  __sanitizer_start_switch_fiber(nullptr, to->stack_limit, to->stack_size);
#endif
#if defined(MANATEE_TSAN_FIBERS)
  __tsan_switch_to_fiber(to->tsan_fiber, 0);
#endif
  raw_switch(from, to);
  std::abort();  // a finished fiber must never be resumed
}

void* saved_stack_pointer(const ExecContext& ctx) noexcept {
#if defined(MANATEE_FIBER_ASM_X86_64)
  return ctx.sp;  // the real suspended stack pointer
#else
  (void)ctx;
  return nullptr;  // ucontext: sp owns a heap ucontext_t, not a stack address
#endif
}

std::size_t stack_page_bytes() noexcept { return page_size(); }

std::size_t decommit_stack_span(void* lo, void* hi) noexcept {
  auto* begin = static_cast<std::byte*>(lo);
  auto* end = static_cast<std::byte*>(hi);
  if (begin >= end) return 0;
  const auto bytes = static_cast<std::size_t>(end - begin);
  if (::madvise(begin, bytes, MADV_DONTNEED) != 0) return 0;
  return bytes;
}

bool stack_guard_intact(const StackAllocation& stack) noexcept {
  std::uint64_t word = 0;
  std::memcpy(&word, stack.limit, sizeof(word));
  return word == 0;
}

bool stack_vacate_supported() noexcept {
#if defined(MANATEE_ASAN_FIBERS) || defined(MANATEE_TSAN_FIBERS)
  return false;
#else
  return true;
#endif
}

void decommit_stack_spans(const StackSpan* spans, std::size_t count) noexcept {
#if defined(SYS_process_madvise) && defined(SYS_pidfd_open)
  static const int pidfd =
      static_cast<int>(::syscall(SYS_pidfd_open, ::getpid(), 0));
  if (pidfd >= 0) {
    constexpr std::size_t kChunk = 512;  // stay under IOV_MAX everywhere
    struct iovec iov[kChunk];
    bool ok = true;
    for (std::size_t done = 0; ok && done < count; done += kChunk) {
      const std::size_t n = std::min(kChunk, count - done);
      for (std::size_t i = 0; i < n; ++i) {
        iov[i].iov_base = spans[done + i].lo;
        iov[i].iov_len = static_cast<std::size_t>(
            static_cast<std::byte*>(spans[done + i].hi) -
            static_cast<std::byte*>(spans[done + i].lo));
      }
      ok = ::syscall(SYS_process_madvise, pidfd, iov, n, MADV_DONTNEED, 0) >= 0;
    }
    if (ok) return;
  }
#endif
  for (std::size_t i = 0; i < count; ++i) {
    decommit_stack_span(spans[i].lo, spans[i].hi);
  }
}

void destroy_fiber_context(Fiber* fiber) {
#if defined(MANATEE_TSAN_FIBERS)
  if (fiber->ctx.tsan_fiber != nullptr) {
    __tsan_destroy_fiber(fiber->ctx.tsan_fiber);
  }
#endif
#if !defined(MANATEE_FIBER_ASM_X86_64)
  std::free(fiber->ctx.sp);
#endif
  fiber->ctx = ExecContext{};
}

}  // namespace detail

}  // namespace manatee::sched
