// fiber.hpp — stackful cooperative fibers: the mechanism under the
// FiberBackend (scheduler.hpp).
//
// A Fiber is a suspended computation with its own stack. Switching is
// symmetric and explicit: `switch_context` saves the callee-saved register
// state of the current context and resumes another one, exactly like
// boost::context's fcontext switch. On x86-64 the switch is a hand-rolled
// ~20-instruction assembly routine (no sigprocmask syscall, unlike glibc's
// swapcontext); other architectures fall back to ucontext.
//
// Stacks come in two flavours, chosen per pool:
//
//   * guarded (fibers backend): each stack is its own mmap with a PROT_NONE
//     guard page below the usable range, so an overflow faults loudly.
//     Costs 2 VMAs per stack — fine to ~16k ranks, fatal at 64k (the
//     default vm.max_map_count is ~65530).
//   * slabbed (events backend): stacks are carved out of large MAP_NORESERVE
//     slabs, one VMA per ~64 stacks. Isolation is soft: an untouched gap
//     page between neighbours (never committed unless overflowed into) and
//     a guard word at `limit` that must stay zero, checked whenever the
//     scheduler decommits or recycles the stack. This trades the hard
//     guard-page fault for fitting 64k+ stacks under the VMA budget; the
//     deliberate counterweight is that events-mode ranks park at the
//     shallow top-level drive loop, so deep stacks are the exception.
//
// Finished fibers return their stacks to per-depth free tiers (bucketed by
// the observed high-water mark) because lifecycle chains create runtimes —
// and therefore fiber fleets — repeatedly, and reusing a shallow-committed
// stack for a new fiber avoids re-faulting pages a deep predecessor touched.
//
// Sanitizer support: when built with ASan/TSan the switch is annotated with
// __sanitizer_start/finish_switch_fiber and __tsan_switch_to_fiber so the
// sanitizers track the stack change; without them fibers look like wild
// stack-pointer corruption.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace manatee::sched {

/// One fiber stack: [gap/guard page][usable range). `top` is the highest
/// usable address (stacks grow down).
struct StackAllocation {
  void* base = nullptr;   ///< start of the gap/guard page
  std::size_t size = 0;   ///< total span including the gap/guard page
  void* limit = nullptr;  ///< lowest usable address (gap page end)
  void* top = nullptr;    ///< highest usable address
  bool slab = false;      ///< carved from a slab (soft guard) vs own mmap

  [[nodiscard]] std::size_t usable() const noexcept {
    return static_cast<std::size_t>(static_cast<std::byte*>(top) -
                                    static_cast<std::byte*>(limit));
  }
};

/// Stack allocator with depth-tiered free lists. Not thread-safe; the
/// owning scheduler serializes access under its own mutex.
class StackPool {
 public:
  /// `slabbed` selects the slab-carved soft-guard flavour (see file
  /// comment); false keeps the one-mmap-per-stack guard-page flavour.
  explicit StackPool(std::size_t stack_bytes, bool slabbed = false);
  ~StackPool();

  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  [[nodiscard]] StackAllocation acquire();

  /// Return a stack. `high_water_bytes` — the deepest observed use, 0 when
  /// unknown — buckets it into a reuse tier and, for slab stacks that
  /// plausibly reached their bottom page, arms the guard-word overflow
  /// check (reading the word any earlier would commit an untouched page).
  void release(StackAllocation stack, std::size_t high_water_bytes = 0);

  /// Stacks ever carved fresh (== acquire() calls that missed every tier).
  [[nodiscard]] std::uint64_t mapped() const noexcept { return mapped_; }
  /// acquire() calls served from a free tier (the reuse counter).
  [[nodiscard]] std::uint64_t reused() const noexcept { return reused_; }
  [[nodiscard]] bool slabbed() const noexcept { return slabbed_; }

 private:
  static constexpr int kTierCount = 3;
  /// Tier by observed depth: 0 = shallow (<=16 KiB), 1 = medium
  /// (<=64 KiB), 2 = deep. acquire() prefers shallow.
  [[nodiscard]] static int tier_of(std::size_t high_water_bytes) noexcept;

  [[nodiscard]] StackAllocation carve();

  std::size_t stack_bytes_;
  bool slabbed_;
  std::vector<StackAllocation> tiers_[kTierCount];
  std::vector<std::pair<void*, std::size_t>> slabs_;  ///< mmap base, bytes
  std::byte* carve_next_ = nullptr;  ///< next un-carved stack in the slab
  std::size_t carve_left_ = 0;       ///< stacks remaining in the open slab
  std::uint64_t mapped_ = 0;
  std::uint64_t reused_ = 0;
};

class FiberBackend;
class Waiter;

/// Saved execution context: either a fiber or a worker thread's own stack.
/// The embedded sanitizer bookkeeping travels with the context across
/// switches. On the assembly path `sp` is the saved stack pointer; on the
/// ucontext fallback it owns a heap-allocated ucontext_t instead.
struct ExecContext {
  void* sp = nullptr;           ///< saved stack pointer / ucontext_t*
  void* stack_limit = nullptr;  ///< stack bounds, for sanitizer annotations
  std::size_t stack_size = 0;
  void* asan_fake_stack = nullptr;
  void* tsan_fiber = nullptr;
};

/// A rank fiber. Owned by the FiberBackend; waiters reference it while the
/// fiber is parked.
struct Fiber {
  ExecContext ctx;
  StackAllocation stack;
  FiberBackend* backend = nullptr;
  std::function<void()> body;
  int task_index = -1;
  /// Fiber-local log label storage; the scheduler points the logger's
  /// label slot here while the fiber runs (see common/log.hpp).
  std::string log_label = "-";
  bool started = false;  ///< stack allocated lazily at first dispatch
  bool finished = false;

  // Scheduler bookkeeping, guarded by the owning backend's mutex.
  /// Bumped on every prepare_park; deadline-heap entries snapshot it so a
  /// stale entry (the park it described already ended) is recognizable
  /// without touching the Waiter it pointed at.
  std::uint64_t park_epoch = 0;
  /// The waiter of the in-flight park, cleared at every transition to
  /// kNotified. Deadline-heap entries are valid only while this is set.
  Waiter* active_waiter = nullptr;
  /// Lowest stack address estimated committed (observed sp minima, raised
  /// again by decommits). Drives the high-water stats and the events-mode
  /// page decommit of dead frames.
  std::byte* committed_floor = nullptr;

  // Events-mode stack vacating (FiberBackend::observe_stack_depth): while
  // the fiber is parked its live span [vacated_lo, stack.top) sits in this
  // heap buffer and every stack page is decommitted — a parked rank costs
  // O(live frame) heap bytes, not a page. dispatch() copies the span back
  // to the same addresses (so saved registers and frame pointers stay
  // valid) before switching in. `vacated_lo != nullptr` means "vacated";
  // the buffer keeps its capacity across parks to avoid re-allocation.
  std::vector<std::byte> vacated_span;
  std::byte* vacated_lo = nullptr;
  /// Index of this fiber's entry in the owning worker's deferred-decommit
  /// list, -1 when none — lets a re-dispatch cancel the pending decommit in
  /// O(1) instead of scanning the batch. Only used single-worker (deferral
  /// is disabled across workers), so worker and list are unambiguous.
  std::int32_t pending_decommit_slot = -1;
};

namespace detail {

/// Saves the current context into `from` and resumes `to`. Returns when
/// somebody switches back to `from`. Both sides must be annotated contexts
/// (worker registers itself via `init_thread_context`).
void switch_context(ExecContext* from, ExecContext* to);

/// Last switch out of a finishing fiber: like switch_context, but tells
/// ASan to retire the dying context's fake stack. Never returns.
[[noreturn]] void switch_context_final(ExecContext* from, ExecContext* to);

/// Prepare `fiber` so the first switch_context into it enters
/// `fiber_trampoline(fiber)` on its own stack.
void make_fiber_context(Fiber* fiber);

/// Register the calling OS thread's native stack as a switchable context
/// (fills stack bounds and the TSan fiber handle for the running thread).
void init_thread_context(ExecContext* ctx);

/// Release resources of a thread context registered above.
void destroy_thread_context(ExecContext* ctx);

/// Release per-context sanitizer state of a finished fiber. Must run on a
/// different context (you cannot destroy the context you stand on).
void destroy_fiber_context(Fiber* fiber);

/// The saved stack pointer of a suspended context, or nullptr when it is
/// not observable (ucontext fallback, where `sp` is a heap ucontext_t).
[[nodiscard]] void* saved_stack_pointer(const ExecContext& ctx) noexcept;

/// The system page size (cached).
[[nodiscard]] std::size_t stack_page_bytes() noexcept;

/// Decommit [lo, hi) of a suspended stack (MADV_DONTNEED): the span reads
/// as zero afterwards and its physical pages are returned to the kernel.
/// Returns the bytes decommitted (0 when the span is empty or the kernel
/// refused). Callers must only pass spans strictly below the suspended
/// frame's red zone.
std::size_t decommit_stack_span(void* lo, void* hi) noexcept;

/// A [lo, hi) stack span queued for batched decommit.
struct StackSpan {
  void* lo = nullptr;
  void* hi = nullptr;
};

/// Decommit many suspended-stack spans, in ONE process_madvise syscall when
/// the kernel supports it (self-pidfd), per-span madvise otherwise. Best
/// effort: decommit is purely an RSS optimization — vacated spans are
/// restored from their heap copy regardless, and dead spans are dead.
void decommit_stack_spans(const StackSpan* spans, std::size_t count) noexcept;

/// Slab-stack overflow check: the guard word at `stack.limit` must still
/// read zero. Only meaningful once the page is committed (caller gates on
/// the observed high-water reaching the bottom page).
[[nodiscard]] bool stack_guard_intact(const StackAllocation& stack) noexcept;

/// Whether stack vacating (copy-out + full decommit of a parked stack) is
/// usable in this build. False under ASan/TSan: the sanitizers keep shadow
/// state for stack memory that a bulk memcpy restore would invalidate.
[[nodiscard]] bool stack_vacate_supported() noexcept;

/// The fiber's first and only frame, defined by the scheduler: runs
/// fiber->body and switches away forever. Never returns.
[[noreturn]] void fiber_entry(Fiber* fiber);

}  // namespace detail

}  // namespace manatee::sched
