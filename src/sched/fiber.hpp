// fiber.hpp — stackful cooperative fibers: the mechanism under the
// FiberBackend (scheduler.hpp).
//
// A Fiber is a suspended computation with its own guarded stack. Switching
// is symmetric and explicit: `switch_context` saves the callee-saved
// register state of the current context and resumes another one, exactly
// like boost::context's fcontext switch. On x86-64 the switch is a
// hand-rolled ~20-instruction assembly routine (no sigprocmask syscall,
// unlike glibc's swapcontext); other architectures fall back to ucontext.
//
// Stacks are mmap'd with a PROT_NONE guard page below the usable range, so
// an overflow faults loudly instead of corrupting a neighboring fiber.
// Finished fibers return their stacks to a free list (StackPool) because
// lifecycle chains create runtimes — and therefore fiber fleets —
// repeatedly.
//
// Sanitizer support: when built with ASan/TSan the switch is annotated with
// __sanitizer_start/finish_switch_fiber and __tsan_switch_to_fiber so the
// sanitizers track the stack change; without them fibers look like wild
// stack-pointer corruption.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace manatee::sched {

/// One mmap'd fiber stack: [guard page][usable range). `top` is the highest
/// usable address (stacks grow down).
struct StackAllocation {
  void* base = nullptr;   ///< mmap base (the guard page)
  std::size_t size = 0;   ///< total mapping size including the guard
  void* limit = nullptr;  ///< lowest usable address (guard page end)
  void* top = nullptr;    ///< highest usable address

  [[nodiscard]] std::size_t usable() const noexcept {
    return static_cast<std::size_t>(static_cast<std::byte*>(top) -
                                    static_cast<std::byte*>(limit));
  }
};

/// Guarded-stack allocator with a free list. Not thread-safe; the owning
/// scheduler serializes access under its own mutex.
class StackPool {
 public:
  explicit StackPool(std::size_t stack_bytes);
  ~StackPool();

  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  [[nodiscard]] StackAllocation acquire();
  void release(StackAllocation stack);

  /// Stacks ever mmap'd (== acquire() calls that missed the free list).
  [[nodiscard]] std::uint64_t mapped() const noexcept { return mapped_; }
  /// acquire() calls served from the free list (the reuse counter).
  [[nodiscard]] std::uint64_t reused() const noexcept { return reused_; }

 private:
  std::size_t stack_bytes_;
  std::vector<StackAllocation> free_;
  std::uint64_t mapped_ = 0;
  std::uint64_t reused_ = 0;
};

class FiberBackend;

/// Saved execution context: either a fiber or a worker thread's own stack.
/// The embedded sanitizer bookkeeping travels with the context across
/// switches. On the assembly path `sp` is the saved stack pointer; on the
/// ucontext fallback it owns a heap-allocated ucontext_t instead.
struct ExecContext {
  void* sp = nullptr;           ///< saved stack pointer / ucontext_t*
  void* stack_limit = nullptr;  ///< stack bounds, for sanitizer annotations
  std::size_t stack_size = 0;
  void* asan_fake_stack = nullptr;
  void* tsan_fiber = nullptr;
};

/// A rank fiber. Owned by the FiberBackend; waiters reference it while the
/// fiber is parked.
struct Fiber {
  ExecContext ctx;
  StackAllocation stack;
  FiberBackend* backend = nullptr;
  std::function<void()> body;
  int task_index = -1;
  /// Fiber-local log label storage; the scheduler points the logger's
  /// label slot here while the fiber runs (see common/log.hpp).
  std::string log_label = "-";
  bool started = false;  ///< stack allocated lazily at first dispatch
  bool finished = false;
};

namespace detail {

/// Saves the current context into `from` and resumes `to`. Returns when
/// somebody switches back to `from`. Both sides must be annotated contexts
/// (worker registers itself via `init_thread_context`).
void switch_context(ExecContext* from, ExecContext* to);

/// Last switch out of a finishing fiber: like switch_context, but tells
/// ASan to retire the dying context's fake stack. Never returns.
[[noreturn]] void switch_context_final(ExecContext* from, ExecContext* to);

/// Prepare `fiber` so the first switch_context into it enters
/// `fiber_trampoline(fiber)` on its own stack.
void make_fiber_context(Fiber* fiber);

/// Register the calling OS thread's native stack as a switchable context
/// (fills stack bounds and the TSan fiber handle for the running thread).
void init_thread_context(ExecContext* ctx);

/// Release resources of a thread context registered above.
void destroy_thread_context(ExecContext* ctx);

/// Release per-context sanitizer state of a finished fiber. Must run on a
/// different context (you cannot destroy the context you stand on).
void destroy_fiber_context(Fiber* fiber);

/// The fiber's first and only frame, defined by the scheduler: runs
/// fiber->body and switches away forever. Never returns.
[[noreturn]] void fiber_entry(Fiber* fiber);

}  // namespace detail

}  // namespace manatee::sched
