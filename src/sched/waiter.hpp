// waiter.hpp — backend-neutral blocking: the one primitive every park site
// in the runtime goes through.
//
// A sched::Waiter replaces a raw per-waiter condition variable. The calling
// context decides the mechanism at park time:
//
//   * on a plain OS thread, park_until degrades to exactly the old
//     condition_variable::wait_until path (ThreadBackend semantics);
//   * on a fiber, the park suspends the fiber (the worker thread moves on
//     to the next ready fiber) and notify() re-enqueues exactly that fiber
//     — no futex, no OS context switch.
//
// Usage contract (matching MessageStore): park_until is called with the
// waiter's interest mutex held; notify() is called only while that same
// mutex is held. This makes the lost-wakeup handoff race-free: the
// predicate is made true and notify() issued inside the critical section
// the parker re-checks the predicate under.
//
// A Waiter serves ONE parking context at a time (it holds a single Fiber
// slot). That matches the mailbox exactly — every waiting call stack-
// allocates its own Waiter — but means a Waiter must not be shared by two
// concurrently-parking fibers.
//
// The fiber-side handoff is a small state machine guarded by the backend's
// scheduler mutex:
//
//   kIdle --prepare_park--> kParking --worker completes--> kParked
//     kParking --notify--> kNotified   (worker re-enqueues immediately)
//     kParked  --notify--> kNotified   (notifier unlinks + re-enqueues)
//
// The watchdog deadline travels with the parked waiter; an idle worker
// expires overdue parks (timed_out() true) so distributed-deadlock
// detection keeps working when every rank is a fiber.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/mutex.hpp"

namespace manatee::sched {

class FiberBackend;
struct Fiber;

enum class ParkState : std::uint8_t { kIdle, kParking, kParked, kNotified };

class Waiter {
 public:
  Waiter() = default;
  Waiter(const Waiter&) = delete;
  Waiter& operator=(const Waiter&) = delete;

  /// Block until notify() or `deadline`. `mu` — the caller's interest
  /// mutex, held on entry — is released while blocked and re-held on
  /// return. Returns false only when the deadline expired before a wakeup
  /// (spurious wakeups return true; callers loop on their predicate either
  /// way).
  bool park_until(common::Mutex& mu,
                  std::chrono::steady_clock::time_point deadline)
      MANATEE_REQUIRES(mu);

  /// Wake the parked context (caller holds the same mutex `park_until` was
  /// entered with). No-op when nobody is parked.
  void notify();

 private:
  friend class FiberBackend;

  // Thread path. The Waiter abstraction is exactly why this CV may exist:
  // every other park site in the runtime must come here instead.
  std::condition_variable cv_;  // manatee-lint: allow(raw-condvar) — Waiter IS the one sanctioned CV park site

  // Fiber path. `fiber_mode_` is guarded by the caller's interest mutex
  // (held across both park_until entry and notify); everything else is
  // guarded by the owning backend's scheduler mutex.
  bool fiber_mode_ = false;
  Fiber* fiber_ = nullptr;
  ParkState state_ = ParkState::kIdle;
  bool timed_out_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  Waiter* prev_ = nullptr;  ///< intrusive parked-list links
  Waiter* next_ = nullptr;
};

}  // namespace manatee::sched
