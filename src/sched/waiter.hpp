// waiter.hpp — backend-neutral blocking: the one primitive every park site
// in the runtime goes through.
//
// A sched::Waiter replaces a raw per-waiter condition variable. The calling
// context decides the mechanism at park time:
//
//   * on a plain OS thread, park_until degrades to exactly the old
//     condition_variable::wait_until path (ThreadBackend semantics);
//   * on a fiber, the park suspends the fiber (the worker thread moves on
//     to the next ready fiber) and notify() re-enqueues exactly that fiber
//     — no futex, no OS context switch;
//   * armed as a continuation (events backend), the waiter never blocks
//     anything: notify() enqueues a plain function call on the scheduler's
//     ready queue. The parked "context" is a heap record, not a stack.
//
// Usage contract (matching MessageStore): park_until is called with the
// waiter's interest mutex held; notify() is called only while that same
// mutex is held. This makes the lost-wakeup handoff race-free: the
// predicate is made true and notify() issued inside the critical section
// the parker re-checks the predicate under. arm_continuation obeys the same
// rule: the mode switch happens before the waiter is registered with an
// interest list, and the continuation fields are immutable while registered.
//
// A Waiter serves ONE parking context at a time (it holds a single Fiber
// slot or one continuation record). That matches the mailbox exactly —
// every waiting call stack-allocates its own Waiter, and the events drive
// loop owns one per rank — but means a Waiter must not be shared by two
// concurrently-parking fibers.
//
// The fiber-side handoff is a small state machine guarded by the backend's
// scheduler mutex:
//
//   kIdle --prepare_park--> kParking --worker completes--> kParked
//     kParking --notify--> kNotified   (worker re-enqueues immediately)
//     kParked  --notify--> kNotified   (notifier re-enqueues the fiber)
//
// The watchdog deadline travels into the backend's deadline min-heap; an
// idle worker expires exactly the overdue parks (timed_out() true) so
// distributed-deadlock detection keeps working when every rank is a fiber —
// without rescanning every parked rank each beat.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "common/mutex.hpp"

namespace manatee::sched {

class FiberBackend;
struct Fiber;

enum class ParkState : std::uint8_t { kIdle, kParking, kParked, kNotified };

class Waiter {
 public:
  Waiter() = default;
  Waiter(const Waiter&) = delete;
  Waiter& operator=(const Waiter&) = delete;

  /// Block until notify() or `deadline`. `mu` — the caller's interest
  /// mutex, held on entry — is released while blocked and re-held on
  /// return. Returns false only when the deadline expired before a wakeup
  /// (spurious wakeups return true; callers loop on their predicate either
  /// way).
  bool park_until(common::Mutex& mu,
                  std::chrono::steady_clock::time_point deadline)
      MANATEE_REQUIRES(mu);

  /// Wake the parked context (caller holds the same mutex `park_until` was
  /// entered with). No-op when nobody is parked.
  void notify();

  /// Wake `count` waiters that share one interest mutex (caller holds it)
  /// in as few scheduler lock rounds as possible: waiters of the same
  /// backend are re-enqueued in one batch — one backend mutex round and one
  /// ready-queue round — instead of `count` independent notify() calls.
  /// At 64k ranks a single delivery can satisfy thousands of parked ranks;
  /// this is what keeps that wakeup O(m) work under O(1) lock traffic.
  static void notify_batch(Waiter* const* waiters, std::size_t count);

  /// Switch this waiter to continuation mode: notify() will enqueue
  /// `fn(arg, epoch)` on the calling fiber's scheduler instead of waking a
  /// blocked context. Must be called on a scheduler fiber, with the
  /// interest mutex the waiter will be registered under held, BEFORE
  /// registering; the fields are immutable until disarm_continuation().
  /// The epoch is opaque to the scheduler — continuations use it to drop
  /// stale firings after the interest has moved on.
  void arm_continuation(void (*fn)(void*, std::uint64_t), void* arg,
                        std::uint64_t epoch);

  /// Back to plain (thread/CV) mode. Caller holds the interest mutex; any
  /// late notify() after this degrades to a harmless CV signal.
  void disarm_continuation() noexcept;

  /// Update the epoch of an armed continuation (interest mutex held).
  void set_continuation_epoch(std::uint64_t epoch) noexcept {
    cont_epoch_ = epoch;
  }

  /// Declare that while a fiber is parked on THIS waiter, no other context
  /// reads or writes any part of the fiber's stack (the waiter itself, the
  /// wait's result buffers, and all op state live off-stack). This is the
  /// caller's promise that enables whole-stack vacating (the scheduler
  /// copies the live span to the heap and decommits every stack page for
  /// the duration of the park — any concurrent touch of the stack would be
  /// lost on restore). Set before parking, on the parking context; sticky
  /// until changed, so per-wait callers must re-set it each time.
  void set_stack_quiescent(bool on) noexcept { stack_quiescent_ = on; }

 private:
  friend class FiberBackend;

  /// How notify() wakes this waiter. Guarded by the caller's interest
  /// mutex, exactly like the registration itself: park_until flips
  /// kThread<->kFiber under it, arm/disarm set kContinuation under it.
  enum class Mode : std::uint8_t { kThread, kFiber, kContinuation };

  // Thread path. The Waiter abstraction is exactly why this CV may exist:
  // every other park site in the runtime must come here instead.
  std::condition_variable cv_;  // manatee-lint: allow(raw-condvar) — Waiter IS the one sanctioned CV park site

  Mode mode_ = Mode::kThread;

  // Fiber path: guarded by the owning backend's scheduler mutex (the
  // analysis cannot name another object's member; every mutation stays
  // inside FiberBackend's self-locking methods).
  Fiber* fiber_ = nullptr;
  ParkState state_ = ParkState::kIdle;
  bool timed_out_ = false;
  bool stack_quiescent_ = false;  ///< see set_stack_quiescent()

  // Continuation path: written by arm/disarm under the interest mutex,
  // read by notify() under the same mutex.
  FiberBackend* cont_backend_ = nullptr;
  void (*cont_fn_)(void*, std::uint64_t) = nullptr;
  void* cont_arg_ = nullptr;
  std::uint64_t cont_epoch_ = 0;
};

}  // namespace manatee::sched
