#include "sched/scheduler.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"

namespace manatee::sched {

namespace {

// The worker hosting the calling thread (null on non-scheduler threads).
// Private to the backend; all outside access goes through current_fiber().
thread_local FiberBackend::Worker* t_worker = nullptr;

constexpr auto kIdleScanPeriod = std::chrono::milliseconds(100);

}  // namespace

// ---- backend selection ------------------------------------------------------

const char* backend_name(Backend backend) noexcept {
  return backend == Backend::kThreads ? "threads" : "fibers";
}

Backend parse_backend(const std::string& name) {
  if (name == "threads") return Backend::kThreads;
  if (name == "fibers") return Backend::kFibers;
  throw UsageError("unknown scheduler backend '" + name +
                   "' (expected threads|fibers)");
}

Backend default_backend() noexcept {
  static const Backend selected = [] {
    const char* env = std::getenv("MANATEE_SCHED");
    if (env == nullptr || *env == '\0') return Backend::kThreads;
    if (std::strcmp(env, "fibers") == 0) return Backend::kFibers;
    if (std::strcmp(env, "threads") != 0) {
      LOG_WARN("MANATEE_SCHED='" << env
                                 << "' not recognized (threads|fibers); "
                                    "using threads");
    }
    return Backend::kThreads;
  }();
  return selected;
}

Fiber* current_fiber() noexcept {
  return t_worker != nullptr ? t_worker->current : nullptr;
}

void yield() {
  if (t_worker != nullptr && t_worker->current != nullptr) {
    t_worker->backend->yield_current();
  } else {
    std::this_thread::yield();
  }
}

// ---- run_tasks --------------------------------------------------------------

SchedStats run_tasks(const SchedConfig& config, int n, const TaskFn& task) {
  MANATEE_REQUIRE(n >= 0, "task count must be non-negative");
  // Launching a pool from inside a fiber would block this worker thread on
  // the join (threads backend) or corrupt the worker state (fiber backend),
  // starving every rank multiplexed here. Nested runtimes must be driven
  // from a plain thread.
  MANATEE_REQUIRE(current_fiber() == nullptr,
                  "run_tasks may not be called from inside a fiber");
  SchedStats stats;
  if (n == 0) return stats;
  if (config.backend == Backend::kThreads) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      threads.emplace_back([&task, i] { task(i); });
    }
    for (auto& t : threads) t.join();
    stats.workers = n;
    return stats;
  }
  FiberBackend backend(config, n, task);
  return backend.run();
}

// ---- FiberBackend -----------------------------------------------------------

FiberBackend::FiberBackend(const SchedConfig& config, int n, const TaskFn& task)
    : config_(config), stacks_(config.stack_bytes) {
  MANATEE_REQUIRE(n >= 0, "task count must be non-negative");
  fibers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto fiber = std::make_unique<Fiber>();
    fiber->backend = this;
    fiber->task_index = i;
    fiber->body = [&task, i] { task(i); };
    ready_.push_back(fiber.get());
    fibers_.push_back(std::move(fiber));
  }
  live_ = fibers_.size();
}

FiberBackend::~FiberBackend() = default;

SchedStats FiberBackend::run() {
  MANATEE_REQUIRE(!ran_, "FiberBackend::run may be called once");
  MANATEE_REQUIRE(current_fiber() == nullptr,
                  "fiber schedulers cannot be nested inside a fiber");
  ran_ = true;

  const int n = static_cast<int>(fibers_.size());
  int workers = config_.workers;
  if (workers <= 0) {
    workers = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  workers = std::max(1, std::min(workers, n));

  std::vector<std::thread> extra;
  extra.reserve(static_cast<std::size_t>(workers - 1));
  for (int i = 1; i < workers; ++i) {
    extra.emplace_back([this, i] {
      set_log_thread_label("sched-worker " + std::to_string(i));
      Worker worker;
      worker_loop(worker);
    });
  }
  // The calling thread doubles as worker 0 — with one hardware thread the
  // whole job runs fully cooperatively, no cross-thread handoff at all.
  Worker worker0;
  worker_loop(worker0);
  for (auto& t : extra) t.join();

  SchedStats stats;
  stats.workers = workers;
  {
    common::MutexLock lock(mutex_);  // workers joined; lock kept for the analysis
    stats.stacks_mapped = stacks_.mapped();
    stats.stacks_reused = stacks_.reused();
    stats.dispatches = dispatches_;
  }
  return stats;
}

void FiberBackend::wait_for_work_locked(std::chrono::milliseconds period) {
  // Bridge the annotated mutex into the CV wait: adopt the already-held
  // lock, wait (releasing and re-acquiring it), then release the
  // std::unique_lock's claim so ownership stays with the caller.
  std::unique_lock<std::mutex> cv_lock(mutex_.native(), std::adopt_lock);  // manatee-lint: allow(raw-mutex, raw-mutex-guard, native-handle) — CV bridge over the annotated mutex
  work_cv_.wait_for(cv_lock, period);
  cv_lock.release();
}

void FiberBackend::worker_loop(Worker& worker) {
  worker.backend = this;
  detail::init_thread_context(&worker.ctx);
  Worker* const prev_worker = t_worker;
  t_worker = &worker;

  mutex_.lock();  // manatee-lint: allow(bare-lock) — ownership spans the dispatch suspension points below
  while (live_ > 0) {
    if (ready_.empty()) {
      // All live fibers are parked or running elsewhere. Sleep with a
      // bounded period so the watchdog deadlines of parked fibers are
      // still enforced (distributed deadlock must stay loud).
      wait_for_work_locked(kIdleScanPeriod);
      expire_timeouts_locked();
      continue;
    }
    Fiber* fiber = ready_.front();
    ready_.pop_front();
    if (!fiber->started) {
      fiber->stack = stacks_.acquire();
      detail::make_fiber_context(fiber);
      fiber->started = true;
    }
    ++dispatches_;
    mutex_.unlock();  // manatee-lint: allow(bare-lock) — dropped around the dispatch (fiber code must not run under the backend lock)
    dispatch(worker, fiber);
    mutex_.lock();  // manatee-lint: allow(bare-lock) — re-taken after the fiber yields the worker back
    process_pending_locked(worker);
  }
  work_cv_.notify_all();  // final fiber done: release the other workers
  mutex_.unlock();  // manatee-lint: allow(bare-lock) — closes the worker_loop ownership span opened above

  t_worker = prev_worker;
  detail::destroy_thread_context(&worker.ctx);
}

void FiberBackend::dispatch(Worker& worker, Fiber* fiber) {
  worker.current = fiber;
  std::string* prev_slot = log_detail::exchange_label_slot(&fiber->log_label);
  detail::switch_context(&worker.ctx, &fiber->ctx);
  log_detail::exchange_label_slot(prev_slot);
  worker.current = nullptr;
}

void FiberBackend::process_pending_locked(Worker& worker) {
  if (Waiter* waiter = worker.pending_park; waiter != nullptr) {
    worker.pending_park = nullptr;
    if (waiter->state_ == ParkState::kNotified) {
      // notify() landed between the store-mutex release and this point;
      // the fiber never actually sleeps.
      enqueue_ready_locked(waiter->fiber_);
    } else {
      waiter->state_ = ParkState::kParked;
      link_parked_locked(*waiter);
    }
  }
  if (Fiber* fiber = worker.pending_yield; fiber != nullptr) {
    worker.pending_yield = nullptr;
    enqueue_ready_locked(fiber);
  }
  if (Fiber* fiber = worker.pending_done; fiber != nullptr) {
    worker.pending_done = nullptr;
    stacks_.release(fiber->stack);
    fiber->stack = StackAllocation{};
    detail::destroy_fiber_context(fiber);
    --live_;
    if (live_ == 0) work_cv_.notify_all();
  }
}

void FiberBackend::expire_timeouts_locked() {
  if (parked_head_ == nullptr) return;
  const auto now = std::chrono::steady_clock::now();
  Waiter* waiter = parked_head_;
  while (waiter != nullptr) {
    Waiter* next = waiter->next_;
    if (waiter->deadline_ <= now) {
      unlink_parked_locked(*waiter);
      waiter->state_ = ParkState::kNotified;
      waiter->timed_out_ = true;
      enqueue_ready_locked(waiter->fiber_);
    }
    waiter = next;
  }
}

void FiberBackend::enqueue_ready_locked(Fiber* fiber) {
  ready_.push_back(fiber);
  work_cv_.notify_one();
}

void FiberBackend::link_parked_locked(Waiter& waiter) {
  waiter.prev_ = nullptr;
  waiter.next_ = parked_head_;
  if (parked_head_ != nullptr) parked_head_->prev_ = &waiter;
  parked_head_ = &waiter;
}

void FiberBackend::unlink_parked_locked(Waiter& waiter) {
  if (waiter.prev_ != nullptr) {
    waiter.prev_->next_ = waiter.next_;
  } else {
    parked_head_ = waiter.next_;
  }
  if (waiter.next_ != nullptr) waiter.next_->prev_ = waiter.prev_;
  waiter.prev_ = nullptr;
  waiter.next_ = nullptr;
}

void FiberBackend::prepare_park(
    Waiter& waiter, Fiber* fiber,
    std::chrono::steady_clock::time_point deadline) {
  common::MutexLock lock(mutex_);
  waiter.fiber_ = fiber;
  waiter.deadline_ = deadline;
  waiter.timed_out_ = false;
  waiter.state_ = ParkState::kParking;
}

void FiberBackend::suspend_current(Waiter* waiter) {
  Worker* worker = t_worker;
  worker->pending_park = waiter;
  detail::switch_context(&worker->current->ctx, &worker->ctx);
  // Resumed (possibly on a different worker): the park is over.
}

void FiberBackend::notify_waiter(Waiter& waiter) {
  common::MutexLock lock(mutex_);
  switch (waiter.state_) {
    case ParkState::kParked:
      unlink_parked_locked(waiter);
      waiter.state_ = ParkState::kNotified;
      enqueue_ready_locked(waiter.fiber_);
      break;
    case ParkState::kParking:
      // The fiber is mid-suspend; its worker completes the park and sees
      // kNotified, re-enqueueing immediately (no lost wakeup).
      waiter.state_ = ParkState::kNotified;
      break;
    case ParkState::kNotified:
    case ParkState::kIdle:
      break;  // already woken / nobody parked
  }
}

void FiberBackend::yield_current() {
  Worker* worker = t_worker;
  worker->pending_yield = worker->current;
  detail::switch_context(&worker->current->ctx, &worker->ctx);
}

void FiberBackend::fiber_main(Fiber* fiber) {
  try {
    fiber->body();
  } catch (...) {
    // Task bodies own their error handling (Runtime::run catches rank
    // exceptions inside the task); an escape here is unrecoverable.
    LOG_ERROR("fiber task " << fiber->task_index
                            << " leaked an exception; terminating");
    std::terminate();
  }
  fiber->finished = true;
  Worker* worker = t_worker;
  worker->pending_done = fiber;
  detail::switch_context_final(&fiber->ctx, &worker->ctx);
}

namespace detail {

void fiber_entry(Fiber* fiber) { fiber->backend->fiber_main(fiber); }

}  // namespace detail

// ---- Waiter -----------------------------------------------------------------

bool Waiter::park_until(common::Mutex& mu,
                        std::chrono::steady_clock::time_point deadline) {
  Fiber* fiber = current_fiber();
  if (fiber == nullptr) {
    // Thread backend (and any non-scheduler thread): the classic CV path.
    // Adopt the held interest mutex for the wait, then release the claim —
    // ownership stays with the caller either way.
    std::unique_lock<std::mutex> cv_lock(mu.native(), std::adopt_lock);  // manatee-lint: allow(raw-mutex, raw-mutex-guard, native-handle) — CV bridge over the annotated interest mutex
    const auto status = cv_.wait_until(cv_lock, deadline);
    cv_lock.release();
    return status != std::cv_status::timeout;
  }
  FiberBackend* backend = fiber->backend;
  fiber_mode_ = true;  // guarded by `mu`, like notify()'s read
  backend->prepare_park(*this, fiber, deadline);
  mu.unlock();  // manatee-lint: allow(bare-lock) — the park suspends this fiber; the interest mutex must not travel into the scheduler
  backend->suspend_current(this);
  mu.lock();  // manatee-lint: allow(bare-lock) — the fiber resumed; re-take the interest mutex for the caller
  fiber_mode_ = false;
  // timed_out_ was written by the expiring worker under the scheduler
  // mutex before this fiber was re-enqueued; the dispatch that resumed us
  // orders that write before this read.
  return !timed_out_;
}

void Waiter::notify() {
  if (fiber_mode_) {
    fiber_->backend->notify_waiter(*this);
  } else {
    cv_.notify_one();
  }
}

}  // namespace manatee::sched
