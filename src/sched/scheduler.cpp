#include "sched/scheduler.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"

namespace manatee::sched {

namespace {

// The worker hosting the calling thread (null on non-scheduler threads).
// Private to the backend; all outside access goes through current_fiber().
thread_local FiberBackend::Worker* t_worker = nullptr;

/// Upper bound on an idle worker's sleep. The deadline heap gives the exact
/// earliest watchdog expiry, but a park that arrives *while* a worker
/// sleeps does not re-signal the CV — capping the beat bounds how stale a
/// sleeping worker's view of the heap top can get.
constexpr auto kIdleScanPeriod = std::chrono::milliseconds(100);

/// Chunk size shared by Waiter::notify_batch and the backend batch path
/// (bounds the stack arrays; bigger deliveries just loop).
constexpr std::size_t kNotifyChunk = 16;

/// Largest live span stack vacating will copy out on park. Shallow parks at
/// the top-level drive loop are ~2 KiB; a frame deeper than this keeps its
/// pages resident and takes the partial-decommit path instead (copying tens
/// of KiB on every park would cost more than the pages it frees).
constexpr std::size_t kVacateMaxLiveBytes = 32 * 1024;

/// Deferred vacate decommits per process_madvise flush.
constexpr std::size_t kVacateBatch = 256;

}  // namespace

// ---- backend selection ------------------------------------------------------

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kThreads:
      return "threads";
    case Backend::kFibers:
      return "fibers";
    case Backend::kEvents:
      return "events";
  }
  return "?";
}

Backend parse_backend(const std::string& name) {
  if (name == "threads") return Backend::kThreads;
  if (name == "fibers") return Backend::kFibers;
  if (name == "events") return Backend::kEvents;
  throw UsageError("unknown scheduler backend '" + name +
                   "' (expected threads|fibers|events)");
}

Backend default_backend() {
  // Memoized; a throwing first call leaves the static unconstructed, so a
  // later call re-reads the (unchanged) environment and throws again —
  // misconfiguration stays loud for every job of the process.
  static const Backend selected = [] {
    const char* env = std::getenv("MANATEE_SCHED");
    if (env == nullptr || *env == '\0') return Backend::kThreads;
    return parse_backend(env);
  }();
  return selected;
}

std::size_t default_stack_budget() {
  static const std::size_t selected = [] {
    const char* env = std::getenv("MANATEE_STACK_BUDGET_MB");
    if (env == nullptr || *env == '\0') return std::size_t{40} << 20;
    char* end = nullptr;
    errno = 0;
    const unsigned long long mb = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || errno != 0 ||
        mb > (std::size_t{1} << 30)) {
      throw UsageError(std::string("invalid MANATEE_STACK_BUDGET_MB '") + env +
                       "' (expected a whole number of MiB)");
    }
    return static_cast<std::size_t>(mb) << 20;
  }();
  return selected;
}

Fiber* current_fiber() noexcept {
  return t_worker != nullptr ? t_worker->current : nullptr;
}

bool events_backend_active() noexcept {
  return t_worker != nullptr && t_worker->current != nullptr &&
         t_worker->backend->events();
}

void count_stackless_park() noexcept {
  if (t_worker != nullptr) t_worker->backend->note_stackless_park();
}

void count_fiber_fallback() noexcept {
  if (t_worker != nullptr) t_worker->backend->note_fiber_fallback();
}

void yield() {
  if (t_worker != nullptr && t_worker->current != nullptr) {
    t_worker->backend->yield_current();
  } else {
    std::this_thread::yield();
  }
}

// ---- run_tasks --------------------------------------------------------------

SchedStats run_tasks(const SchedConfig& config, int n, const TaskFn& task) {
  MANATEE_REQUIRE(n >= 0, "task count must be non-negative");
  // Launching a pool from inside a fiber would block this worker thread on
  // the join (threads backend) or corrupt the worker state (fiber backend),
  // starving every rank multiplexed here. Nested runtimes must be driven
  // from a plain thread.
  MANATEE_REQUIRE(current_fiber() == nullptr,
                  "run_tasks may not be called from inside a fiber");
  SchedStats stats;
  if (n == 0) return stats;
  if (config.backend == Backend::kThreads) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      threads.emplace_back([&task, i] { task(i); });
    }
    for (auto& t : threads) t.join();
    stats.workers = n;
    return stats;
  }
  // kFibers and kEvents share the FiberBackend; events is the same engine
  // with the continuation drive loop and slab stacks switched on.
  FiberBackend backend(config, n, task);
  return backend.run();
}

// ---- FiberBackend -----------------------------------------------------------

FiberBackend::FiberBackend(const SchedConfig& config, int n, const TaskFn& task)
    : config_(config),
      events_(config.backend == Backend::kEvents),
      stacks_(config.stack_bytes,
              /*slabbed=*/config.backend == Backend::kEvents) {
  MANATEE_REQUIRE(n >= 0, "task count must be non-negative");
  int workers = config.workers;
  if (workers <= 0) {
    workers = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  workers_ = std::max(1, std::min(workers, std::max(n, 1)));
  shards_.reserve(static_cast<std::size_t>(workers_));
  for (int i = 0; i < workers_; ++i) {
    shards_.push_back(std::make_unique<ReadyShard>());
  }
  fibers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto fiber = std::make_unique<Fiber>();
    fiber->backend = this;
    fiber->task_index = i;
    fiber->body = [&task, i] { task(i); };
    shards_[static_cast<std::size_t>(i % workers_)]->items.push_back(
        ReadyItem{fiber.get(), nullptr, nullptr, 0});
    fibers_.push_back(std::move(fiber));
  }
  live_ = fibers_.size();
  ready_count_.store(static_cast<std::int64_t>(fibers_.size()),
                     std::memory_order_relaxed);
}

FiberBackend::~FiberBackend() = default;

SchedStats FiberBackend::run() {
  MANATEE_REQUIRE(!ran_, "FiberBackend::run may be called once");
  MANATEE_REQUIRE(current_fiber() == nullptr,
                  "fiber schedulers cannot be nested inside a fiber");
  ran_ = true;

  std::vector<std::thread> extra;
  extra.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int i = 1; i < workers_; ++i) {
    extra.emplace_back([this, i] {
      set_log_thread_label("sched-worker " + std::to_string(i));
      Worker worker;
      worker.index = i;
      worker_loop(worker);
    });
  }
  // The calling thread doubles as worker 0 — with one hardware thread the
  // whole job runs fully cooperatively, no cross-thread handoff at all.
  Worker worker0;
  worker_loop(worker0);
  for (auto& t : extra) t.join();

  SchedStats stats;
  stats.workers = workers_;
  {
    common::MutexLock lock(mutex_);  // workers joined; lock kept for the analysis
    stats.stacks_mapped = stacks_.mapped();
    stats.stacks_reused = stacks_.reused();
  }
  stats.dispatches = dispatches_.load(std::memory_order_relaxed);
  stats.peak_committed = peak_committed_.load(std::memory_order_relaxed);
  stats.stackless_parks = stackless_parks_.load(std::memory_order_relaxed);
  stats.fiber_fallbacks = fiber_fallbacks_.load(std::memory_order_relaxed);
  stats.stack_vacations = stack_vacations_.load(std::memory_order_relaxed);
  return stats;
}

void FiberBackend::wait_for_work_locked(std::chrono::milliseconds period) {
  // Bridge the annotated mutex into the CV wait: adopt the already-held
  // lock, wait (releasing and re-acquiring it), then release the
  // std::unique_lock's claim so ownership stays with the caller.
  std::unique_lock<std::mutex> cv_lock(mutex_.native(), std::adopt_lock);  // manatee-lint: allow(raw-mutex, raw-mutex-guard, native-handle) — CV bridge over the annotated mutex
  work_cv_.wait_for(cv_lock, period);
  cv_lock.release();
}

std::chrono::milliseconds FiberBackend::idle_period_locked() {
  if (deadline_heap_.empty()) return kIdleScanPeriod;
  const auto now = std::chrono::steady_clock::now();
  const auto top = deadline_heap_.front().deadline;
  if (top <= now) return std::chrono::milliseconds(1);
  const auto until = std::chrono::ceil<std::chrono::milliseconds>(top - now);
  return std::clamp(until, std::chrono::milliseconds(1), kIdleScanPeriod);
}

void FiberBackend::worker_loop(Worker& worker) {
  worker.backend = this;
  detail::init_thread_context(&worker.ctx);
  Worker* const prev_worker = t_worker;
  t_worker = &worker;

  for (;;) {
    ReadyItem item;
    if (pop_ready(static_cast<std::size_t>(worker.index), &item)) {
      if (item.fiber != nullptr) {
        run_fiber(worker, item.fiber);
      } else {
        // Stackless continuation: runs to completion right here on the
        // worker's own stack, no fiber switch, no scheduler lock. This is
        // the events-mode hot path — one queued wake progresses a rank's
        // collective without touching its (possibly decommitted) stack.
        item.fn(item.arg, item.epoch);
      }
      continue;
    }
    // Out of ready work: push any deferred stack decommits to the kernel
    // before sleeping — everything still listed has stayed parked.
    flush_pending_decommits(worker);
    common::MutexLock lock(mutex_);
    if (live_ == 0) break;
    expire_timeouts_locked();
    if (ready_count_.load(std::memory_order_seq_cst) > 0) continue;
    // Eventcount sleep: register as a sleeper, then re-check — a pusher
    // that increments ready_count_ after our check is guaranteed to see
    // sleepers_ > 0 and signal under mutex_ (no lost wakeup).
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (ready_count_.load(std::memory_order_seq_cst) <= 0) {
      wait_for_work_locked(idle_period_locked());
    }
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
  work_cv_.notify_all();  // live_ == 0: cascade the shutdown to sleepers

  t_worker = prev_worker;
  detail::destroy_thread_context(&worker.ctx);
}

bool FiberBackend::pop_ready(std::size_t home_shard, ReadyItem* out) {
  if (ready_count_.load(std::memory_order_seq_cst) <= 0) return false;
  const std::size_t n = shards_.size();
  for (std::size_t k = 0; k < n; ++k) {
    ReadyShard& shard = *shards_[(home_shard + k) % n];
    common::MutexLock lock(shard.mutex);
    if (shard.items.empty()) continue;
    *out = shard.items.front();
    shard.items.pop_front();
    ready_count_.fetch_sub(1, std::memory_order_seq_cst);
    return true;
  }
  return false;
}

void FiberBackend::push_shard(const ReadyItem& item) {
  push_shard_batch(&item, 1);
}

void FiberBackend::push_shard_batch(const ReadyItem* items, std::size_t count) {
  // Producer-local shard when pushing from a worker of this backend (the
  // single-CPU common case: zero cross-shard traffic); spray round-robin
  // from external threads (checkpoint writer, abort paths).
  std::size_t index;
  if (t_worker != nullptr && t_worker->backend == this) {
    index = static_cast<std::size_t>(t_worker->index);
  } else {
    index = push_cursor_.fetch_add(1, std::memory_order_relaxed) %
            shards_.size();
  }
  ReadyShard& shard = *shards_[index];
  common::MutexLock lock(shard.mutex);
  for (std::size_t i = 0; i < count; ++i) shard.items.push_back(items[i]);
  // Inside the shard lock so a pop can never outrun its own push's count.
  ready_count_.fetch_add(static_cast<std::int64_t>(count),
                         std::memory_order_seq_cst);
}

void FiberBackend::enqueue_item(const ReadyItem& item) {
  push_shard(item);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    common::MutexLock lock(mutex_);
    work_cv_.notify_one();
  }
}

void FiberBackend::enqueue_ready_locked(Fiber* fiber) {
  push_shard(ReadyItem{fiber, nullptr, nullptr, 0});
  work_cv_.notify_one();
}

void FiberBackend::run_fiber(Worker& worker, Fiber* fiber) {
  if (!fiber->started) {
    common::MutexLock lock(mutex_);
    fiber->stack = stacks_.acquire();
    detail::make_fiber_context(fiber);
    fiber->committed_floor = static_cast<std::byte*>(fiber->stack.top);
    fiber->started = true;
  }
  if (fiber->vacated_lo != nullptr) {
    // Cancel a still-deferred decommit first: the pages are intact, and
    // the entry must not outlive the restore (a later flush would zero the
    // then-running stack). O(1) via the fiber's back-index into the batch.
    if (fiber->pending_decommit_slot >= 0) {
      auto& list = worker.pending_decommit;
      const auto slot = static_cast<std::size_t>(fiber->pending_decommit_slot);
      list[slot] = list.back();
      list.pop_back();
      if (slot < list.size()) {
        list[slot].fiber->pending_decommit_slot =
            static_cast<std::int32_t>(slot);
      }
      fiber->pending_decommit_slot = -1;
    }
    // Repopulate the vacated live span in place — same addresses, so the
    // saved stack pointer and every frame link are valid again. Nobody
    // else can touch this fiber between the pop that handed it to us and
    // the switch below. (After a cancelled decommit this rewrites the
    // identical bytes — cheaper than tracking the distinction.)
    std::memcpy(fiber->vacated_lo, fiber->vacated_span.data(),
                fiber->vacated_span.size());
    // Return the buffer to the worker's pool rather than keep it on the
    // fiber: under the stack budget only a slice of the fleet is vacated
    // at any instant, and per-fiber retained capacities would accumulate
    // to every-fiber-ever-vacated — tens of MiB that defeat the diet. The
    // pool bounds the footprint by the peak number of concurrently
    // vacated fibers and spares a malloc/free pair per park cycle.
    fiber->vacated_span.clear();
    worker.span_pool.push_back(std::move(fiber->vacated_span));
    fiber->vacated_span = {};
    // Page-granular floor (see observe_stack_depth): the memcpy above
    // recommitted every page the live span touches.
    const std::size_t page = detail::stack_page_bytes();
    auto* floor = reinterpret_cast<std::byte*>(
        reinterpret_cast<std::uintptr_t>(fiber->vacated_lo) / page * page);
    auto* lim = static_cast<std::byte*>(fiber->stack.limit);
    fiber->committed_floor = floor < lim ? lim : floor;
    fiber->vacated_lo = nullptr;
    note_committed_growth(static_cast<std::uint64_t>(
        static_cast<std::byte*>(fiber->stack.top) - fiber->committed_floor));
  }
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  dispatch(worker, fiber);
  // Safe window: the fiber left a pending park/yield/done but it is not
  // published yet, so nobody can re-dispatch it — its saved stack is
  // quiescent and depth observation/decommit cannot race a resume.
  observe_stack_depth(worker);
  common::MutexLock lock(mutex_);
  process_pending_locked(worker);
}

void FiberBackend::flush_pending_decommits(Worker& worker) {
  if (worker.pending_decommit.empty()) return;
  // Every listed fiber is parked (cancellation removed any that came back),
  // so all spans are quiescent: batch them into one syscall.
  std::vector<detail::StackSpan> spans;
  spans.reserve(worker.pending_decommit.size());
  for (const auto& entry : worker.pending_decommit) {
    entry.fiber->pending_decommit_slot = -1;
    spans.push_back(entry.span);
  }
  detail::decommit_stack_spans(spans.data(), spans.size());
  worker.pending_decommit.clear();
}

void FiberBackend::note_committed_growth(std::uint64_t grew) noexcept {
  const std::uint64_t total =
      committed_bytes_.fetch_add(grew, std::memory_order_relaxed) + grew;
  std::uint64_t peak = peak_committed_.load(std::memory_order_relaxed);
  while (total > peak && !peak_committed_.compare_exchange_weak(
                             peak, total, std::memory_order_relaxed)) {
  }
}

void FiberBackend::dispatch(Worker& worker, Fiber* fiber) {
  worker.current = fiber;
  std::string* prev_slot = log_detail::exchange_label_slot(&fiber->log_label);
  detail::switch_context(&worker.ctx, &fiber->ctx);
  log_detail::exchange_label_slot(prev_slot);
  worker.current = nullptr;
}

void FiberBackend::observe_stack_depth(Worker& worker) {
  Fiber* fiber = nullptr;
  bool parked = false;
  if (worker.pending_park != nullptr) {
    // Set by this fiber's own prepare_park on this thread; program order
    // makes the read safe before the park is published.
    fiber = worker.pending_park->fiber_;
    parked = true;
  } else if (worker.pending_yield != nullptr) {
    fiber = worker.pending_yield;
  } else {
    fiber = worker.pending_done;
  }
  if (fiber == nullptr || fiber->committed_floor == nullptr) return;
  auto* sp = static_cast<std::byte*>(detail::saved_stack_pointer(fiber->ctx));
  if (sp == nullptr) return;  // ucontext fallback: depth not observable
  auto* top = static_cast<std::byte*>(fiber->stack.top);
  auto* limit = static_cast<std::byte*>(fiber->stack.limit);
  if (sp <= limit || sp > top) return;
  const std::size_t page = detail::stack_page_bytes();
  const auto page_floor = [page](std::byte* p) {
    return reinterpret_cast<std::byte*>(
        reinterpret_cast<std::uintptr_t>(p) / page * page);
  };

  // Track the floor in whole pages: residency is page-granular, and the
  // committed estimate both feeds the stats and gates the vacate policy
  // against SchedConfig::stack_budget_bytes — byte-granular floors would
  // undercount a one-page stack by almost half and let the fleet blow
  // through the budget while the estimate still reads under it.
  std::byte* sp_page = page_floor(sp);
  if (sp_page < limit) sp_page = limit;
  if (sp_page < fiber->committed_floor) {
    const auto grew =
        static_cast<std::uint64_t>(fiber->committed_floor - sp_page);
    fiber->committed_floor = sp_page;
    note_committed_growth(grew);
  }

  if (!events_ || !parked) return;

  // Events-mode stack diet, strongest form first: vacate the whole stack.
  // The live span [sp−128, top) — saved registers, the park frame, the
  // red zone — is copied into a heap buffer on the Fiber and every stack
  // page goes back to the kernel; dispatch() memcpys the bytes back to the
  // same addresses (saved stack pointer and frame links stay valid) before
  // switching in. A parked rank then holds the ~2 KiB its frame actually
  // occupies instead of a 4 KiB page minimum. Only legal when the parking
  // Waiter declared the stack quiescent (set_stack_quiescent: the waiter,
  // result buffers, and op state are all off-stack, so nothing touches the
  // stack until re-dispatch — a concurrent write would be clobbered by the
  // restore). Also skipped under sanitizers (stack shadow state) and for
  // deep frames where the copy would outweigh the pages — all those cases
  // fall back to the partial decommit below.
  // Adaptive gate: vacating trades wall time (copy out, refault on resume)
  // for resident pages, so only do it while the fleet's committed stacks
  // actually exceed the budget. Below it the pages are cheap and the park
  // takes the free path; above it vacates outpace recommits until the
  // estimate settles around the budget — small worlds never vacate at all.
  std::byte* live_lo = sp - 128 < limit ? limit : sp - 128;
  if (worker.pending_park->stack_quiescent_ &&
      detail::stack_vacate_supported() &&
      (config_.stack_budget_bytes == 0 ||
       committed_bytes_.load(std::memory_order_relaxed) >
           config_.stack_budget_bytes) &&
      static_cast<std::size_t>(top - live_lo) <= kVacateMaxLiveBytes) {
    if (fiber->stack.slab && fiber->committed_floor < limit + page) {
      MANATEE_REQUIRE(detail::stack_guard_intact(fiber->stack),
                      "fiber stack overflow detected (slab guard word "
                      "clobbered) — raise SchedConfig::stack_bytes");
    }
    // Zap only the span that can actually be resident — from the lowest
    // page this fiber ever touched (committed_floor tracks observed sp
    // minima) up to top. Zapping the full stack range would make the
    // kernel walk ~64 untouched PTEs per park for a one-page stack.
    std::byte* zap_lo = page_floor(
        fiber->committed_floor < live_lo ? fiber->committed_floor : live_lo);
    if (zap_lo < limit) zap_lo = limit;
    if (!worker.span_pool.empty()) {
      fiber->vacated_span = std::move(worker.span_pool.back());
      worker.span_pool.pop_back();
    }
    fiber->vacated_span.assign(live_lo, top);
    fiber->vacated_lo = live_lo;
    committed_bytes_.fetch_sub(
        static_cast<std::uint64_t>(top - fiber->committed_floor),
        std::memory_order_relaxed);
    fiber->committed_floor = top;
    stack_vacations_.fetch_add(1, std::memory_order_relaxed);
    if (workers_ == 1) {
      // Defer the decommit into a batch. The common short park is then
      // free of syscalls entirely: the fiber re-dispatches, the restore
      // cancels the entry, and the pages were never touched.
      fiber->pending_decommit_slot =
          static_cast<std::int32_t>(worker.pending_decommit.size());
      worker.pending_decommit.push_back(
          {fiber, detail::StackSpan{zap_lo, top}});
      if (worker.pending_decommit.size() >= kVacateBatch) {
        flush_pending_decommits(worker);
      }
    } else {
      // Cross-worker re-dispatch makes deferral racy; decommit eagerly.
      detail::decommit_stack_span(zap_lo, top);
    }
    return;
  }

  // Fallback: release whole pages strictly below the live frame (128-byte
  // red zone kept). A rank that made one deep excursion — a stackful
  // fallback drive, a checkpoint serialization — then parks at its shallow
  // top-level loop again stops holding the excursion's pages for the rest
  // of the run.
  std::byte* dead_hi = page_floor(sp - 128);
  std::byte* dead_lo = page_floor(fiber->committed_floor);
  if (dead_lo < limit) dead_lo = limit;  // gap/guard page stays untouched
  if (dead_hi <= dead_lo ||
      static_cast<std::size_t>(dead_hi - dead_lo) < 4 * page) {
    return;  // not worth a syscall
  }
  if (fiber->stack.slab && fiber->committed_floor < limit + page) {
    // The stack reached its bottom page: the guard word is committed and
    // readable — check it before recycling those pages.
    MANATEE_REQUIRE(detail::stack_guard_intact(fiber->stack),
                    "fiber stack overflow detected (slab guard word "
                    "clobbered) — raise SchedConfig::stack_bytes");
  }
  if (detail::decommit_stack_span(dead_lo, dead_hi) == 0) return;
  if (dead_hi > fiber->committed_floor) {
    committed_bytes_.fetch_sub(
        static_cast<std::uint64_t>(dead_hi - fiber->committed_floor),
        std::memory_order_relaxed);
    fiber->committed_floor = dead_hi;
  }
}

void FiberBackend::process_pending_locked(Worker& worker) {
  if (Waiter* waiter = worker.pending_park; waiter != nullptr) {
    worker.pending_park = nullptr;
    if (waiter->state_ == ParkState::kNotified) {
      // notify() landed between the store-mutex release and this point;
      // the fiber never actually sleeps.
      enqueue_ready_locked(waiter->fiber_);
    } else {
      waiter->state_ = ParkState::kParked;
    }
  }
  if (Fiber* fiber = worker.pending_yield; fiber != nullptr) {
    worker.pending_yield = nullptr;
    enqueue_ready_locked(fiber);
  }
  if (Fiber* fiber = worker.pending_done; fiber != nullptr) {
    worker.pending_done = nullptr;
    std::size_t high_water = 0;
    if (fiber->committed_floor != nullptr) {
      high_water = static_cast<std::size_t>(
          static_cast<std::byte*>(fiber->stack.top) - fiber->committed_floor);
      // The pooled stack's pages may stay resident, but accounting them
      // against the *live* estimate would double-count on reuse (the next
      // fiber re-observes its own depth from scratch).
      committed_bytes_.fetch_sub(high_water, std::memory_order_relaxed);
    }
    if (events_ && fiber->stack.base != nullptr && high_water > 0) {
      // Hand the released stack's touched pages back to the kernel before
      // pooling it. Without this, the finish wave re-commits every fleet
      // stack (each fiber's last dispatch restored its pages) and the
      // job's peak RSS lands exactly there, at world-size × page.
      const std::size_t page = detail::stack_page_bytes();
      auto floor_addr = reinterpret_cast<std::uintptr_t>(
                            fiber->committed_floor) / page * page;
      auto* lo = reinterpret_cast<std::byte*>(floor_addr);
      auto* lim = static_cast<std::byte*>(fiber->stack.limit);
      if (lo < lim) lo = lim;
      detail::decommit_stack_span(lo, fiber->stack.top);
    }
    fiber->vacated_span = {};  // release the heap copy with the stack
    stacks_.release(fiber->stack, high_water);
    fiber->stack = StackAllocation{};
    fiber->committed_floor = nullptr;
    detail::destroy_fiber_context(fiber);
    --live_;
    if (live_ == 0) work_cv_.notify_all();
  }
}

void FiberBackend::expire_timeouts_locked() {
  const auto later = [](const DeadlineEntry& a, const DeadlineEntry& b) {
    return a.deadline > b.deadline;
  };
  const auto now = std::chrono::steady_clock::now();
  while (!deadline_heap_.empty() && deadline_heap_.front().deadline <= now) {
    std::pop_heap(deadline_heap_.begin(), deadline_heap_.end(), later);
    const DeadlineEntry entry = deadline_heap_.back();
    deadline_heap_.pop_back();
    Fiber* fiber = entry.fiber;
    // Lazy deletion: the park this entry described may long be over (epoch
    // moved on) or already notified (active_waiter cleared).
    if (fiber->park_epoch != entry.epoch || fiber->active_waiter == nullptr) {
      continue;
    }
    Waiter* waiter = fiber->active_waiter;
    const bool was_parked = waiter->state_ == ParkState::kParked;
    waiter->timed_out_ = true;
    waiter->state_ = ParkState::kNotified;
    fiber->active_waiter = nullptr;
    // A kParking fiber is mid-suspend: its worker completes the park, sees
    // kNotified and re-enqueues — only a fully parked fiber needs us to.
    if (was_parked) enqueue_ready_locked(fiber);
  }
}

void FiberBackend::compact_deadlines_locked() {
  const auto later = [](const DeadlineEntry& a, const DeadlineEntry& b) {
    return a.deadline > b.deadline;
  };
  std::erase_if(deadline_heap_, [](const DeadlineEntry& e) {
    return e.fiber->park_epoch != e.epoch || e.fiber->active_waiter == nullptr;
  });
  std::make_heap(deadline_heap_.begin(), deadline_heap_.end(), later);
}

void FiberBackend::prepare_park(
    Waiter& waiter, Fiber* fiber,
    std::chrono::steady_clock::time_point deadline) {
  const auto later = [](const DeadlineEntry& a, const DeadlineEntry& b) {
    return a.deadline > b.deadline;
  };
  common::MutexLock lock(mutex_);
  waiter.fiber_ = fiber;
  waiter.timed_out_ = false;
  waiter.state_ = ParkState::kParking;
  ++fiber->park_epoch;
  fiber->active_waiter = &waiter;
  deadline_heap_.push_back(DeadlineEntry{deadline, fiber, fiber->park_epoch});
  std::push_heap(deadline_heap_.begin(), deadline_heap_.end(), later);
  // Lazy deletion leaves one stale entry per completed park behind; compact
  // once they dominate so the heap stays O(currently parked).
  if (deadline_heap_.size() > std::max<std::size_t>(64, 2 * live_)) {
    compact_deadlines_locked();
  }
}

void FiberBackend::suspend_current(Waiter* waiter) {
  Worker* worker = t_worker;
  worker->pending_park = waiter;
  detail::switch_context(&worker->current->ctx, &worker->ctx);
  // Resumed (possibly on a different worker): the park is over.
}

void FiberBackend::notify_waiter(Waiter& waiter) {
  common::MutexLock lock(mutex_);
  switch (waiter.state_) {
    case ParkState::kParked:
      waiter.state_ = ParkState::kNotified;
      waiter.fiber_->active_waiter = nullptr;
      enqueue_ready_locked(waiter.fiber_);
      break;
    case ParkState::kParking:
      // The fiber is mid-suspend; its worker completes the park and sees
      // kNotified, re-enqueueing immediately (no lost wakeup).
      waiter.state_ = ParkState::kNotified;
      waiter.fiber_->active_waiter = nullptr;
      break;
    case ParkState::kNotified:
    case ParkState::kIdle:
      break;  // already woken / nobody parked
  }
}

void FiberBackend::notify_waiters_batch(Waiter* const* waiters,
                                        std::size_t count) {
  MANATEE_REQUIRE(count <= kNotifyChunk,
                  "notify_waiters_batch exceeds the chunk bound");
  ReadyItem items[kNotifyChunk];
  std::size_t ready = 0;
  common::MutexLock lock(mutex_);
  for (std::size_t i = 0; i < count; ++i) {
    Waiter& waiter = *waiters[i];
    if (waiter.mode_ == Waiter::Mode::kContinuation) {
      items[ready++] = ReadyItem{nullptr, waiter.cont_fn_, waiter.cont_arg_,
                                 waiter.cont_epoch_};
      continue;
    }
    switch (waiter.state_) {
      case ParkState::kParked:
        waiter.state_ = ParkState::kNotified;
        waiter.fiber_->active_waiter = nullptr;
        items[ready++] = ReadyItem{waiter.fiber_, nullptr, nullptr, 0};
        break;
      case ParkState::kParking:
        waiter.state_ = ParkState::kNotified;
        waiter.fiber_->active_waiter = nullptr;
        break;
      case ParkState::kNotified:
      case ParkState::kIdle:
        break;
    }
  }
  if (ready == 0) return;
  // One shard round for the whole batch — the m-waiters-one-delivery case
  // costs one scheduler lock and one queue lock, not m of each.
  push_shard_batch(items, ready);
  if (ready == 1) {
    work_cv_.notify_one();
  } else {
    work_cv_.notify_all();
  }
}

void FiberBackend::yield_current() {
  Worker* worker = t_worker;
  worker->pending_yield = worker->current;
  detail::switch_context(&worker->current->ctx, &worker->ctx);
}

void FiberBackend::fiber_main(Fiber* fiber) {
  try {
    fiber->body();
  } catch (...) {
    // Task bodies own their error handling (Runtime::run catches rank
    // exceptions inside the task); an escape here is unrecoverable.
    LOG_ERROR("fiber task " << fiber->task_index
                            << " leaked an exception; terminating");
    std::terminate();
  }
  fiber->finished = true;
  Worker* worker = t_worker;
  worker->pending_done = fiber;
  detail::switch_context_final(&fiber->ctx, &worker->ctx);
}

namespace detail {

void fiber_entry(Fiber* fiber) { fiber->backend->fiber_main(fiber); }

}  // namespace detail

// ---- Waiter -----------------------------------------------------------------

bool Waiter::park_until(common::Mutex& mu,
                        std::chrono::steady_clock::time_point deadline) {
  Fiber* fiber = current_fiber();
  if (fiber == nullptr) {
    // Thread backend (and any non-scheduler thread): the classic CV path.
    // Adopt the held interest mutex for the wait, then release the claim —
    // ownership stays with the caller either way.
    std::unique_lock<std::mutex> cv_lock(mu.native(), std::adopt_lock);  // manatee-lint: allow(raw-mutex, raw-mutex-guard, native-handle) — CV bridge over the annotated interest mutex
    const auto status = cv_.wait_until(cv_lock, deadline);
    cv_lock.release();
    return status != std::cv_status::timeout;
  }
  FiberBackend* backend = fiber->backend;
  mode_ = Mode::kFiber;  // guarded by `mu`, like notify()'s read
  backend->prepare_park(*this, fiber, deadline);
  mu.unlock();  // manatee-lint: allow(bare-lock) — the park suspends this fiber; the interest mutex must not travel into the scheduler
  backend->suspend_current(this);
  mu.lock();  // manatee-lint: allow(bare-lock) — the fiber resumed; re-take the interest mutex for the caller
  mode_ = Mode::kThread;
  // timed_out_ was written by the expiring worker under the scheduler
  // mutex before this fiber was re-enqueued; the dispatch that resumed us
  // orders that write before this read.
  return !timed_out_;
}

void Waiter::notify() {
  switch (mode_) {
    case Mode::kFiber:
      fiber_->backend->notify_waiter(*this);
      break;
    case Mode::kContinuation:
      cont_backend_->enqueue_item(FiberBackend::ReadyItem{
          nullptr, cont_fn_, cont_arg_, cont_epoch_});
      break;
    case Mode::kThread:
      cv_.notify_one();
      break;
  }
}

void Waiter::notify_batch(Waiter* const* waiters, std::size_t count) {
  // Group consecutive same-backend waiters and wake each group in one
  // scheduler round; CV (thread-mode) waiters wake individually — they are
  // distinct OS threads either way.
  Waiter* group[kNotifyChunk];
  FiberBackend* backend = nullptr;
  std::size_t grouped = 0;
  for (std::size_t i = 0; i < count; ++i) {
    Waiter* waiter = waiters[i];
    FiberBackend* b = nullptr;
    if (waiter->mode_ == Mode::kFiber) {
      b = waiter->fiber_->backend;
    } else if (waiter->mode_ == Mode::kContinuation) {
      b = waiter->cont_backend_;
    }
    if (b == nullptr) {
      waiter->cv_.notify_one();
      continue;
    }
    if (grouped > 0 && (b != backend || grouped == kNotifyChunk)) {
      backend->notify_waiters_batch(group, grouped);
      grouped = 0;
    }
    backend = b;
    group[grouped++] = waiter;
  }
  if (grouped > 0) backend->notify_waiters_batch(group, grouped);
}

void Waiter::arm_continuation(void (*fn)(void*, std::uint64_t), void* arg,
                              std::uint64_t epoch) {
  Fiber* fiber = current_fiber();
  MANATEE_REQUIRE(fiber != nullptr,
                  "arm_continuation requires a scheduler fiber");
  mode_ = Mode::kContinuation;
  cont_backend_ = fiber->backend;
  cont_fn_ = fn;
  cont_arg_ = arg;
  cont_epoch_ = epoch;
}

void Waiter::disarm_continuation() noexcept {
  mode_ = Mode::kThread;
  cont_backend_ = nullptr;
  cont_fn_ = nullptr;
  cont_arg_ = nullptr;
  cont_epoch_ = 0;
}

}  // namespace manatee::sched
