// scheduler.hpp — the rank scheduler: run N rank tasks under one of three
// backends.
//
//   * ThreadBackend — one OS thread per rank (the historical model, and
//     still the default): simple, preemptive, but futex-bound once rank
//     ping-pong dominates and capped at a few thousand ranks per process.
//   * FiberBackend — N stackful fibers multiplexed onto a worker pool
//     sized to hardware concurrency. Ranks block cooperatively through
//     sched::Waiter (waiter.hpp): a park suspends the fiber in user space
//     and the delivery that satisfies its declared interest re-enqueues
//     exactly that fiber. On the 1-CPU figure box this turns every
//     rank-to-rank hop from a ~2.5 µs futex round trip into a ~100 ns
//     context switch, which is what lets 1k–16k-rank worlds run at all.
//   * Events mode (kEvents) — the FiberBackend with the hybrid
//     event-driven drive loop switched on (DESIGN.md §12): collectives are
//     progressed by continuations that run directly on the worker stack
//     (sched::Waiter in continuation mode), the rank fiber parks once per
//     collective at its shallow top-level frame, and stacks live in
//     MAP_NORESERVE slabs with dead pages decommitted at park. A parked
//     rank then costs O(bytes of its wait record), not a guard-paged
//     256 KiB stack — the difference between 16k and 64k+ ranks fitting in
//     one process.
//
// Selection is per job via SchedConfig (RuntimeConfig::sched); the
// MANATEE_SCHED environment variable ("threads" | "fibers" | "events")
// overrides the built-in default so whole suites (e.g. the nightly
// lifecycle soak) can be flipped wholesale — anything else is a loud
// UsageError, never a silent threads fallback. Semantics are
// backend-independent by construction — virtual-time merges happen at
// observation points only (DESIGN.md §8) — and the cross-backend
// equivalence suite (tests/sched) holds all three backends to bit-identical
// results.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "sched/fiber.hpp"
#include "sched/waiter.hpp"

namespace manatee::sched {

enum class Backend { kThreads, kFibers, kEvents };

[[nodiscard]] const char* backend_name(Backend backend) noexcept;

/// Parse "threads" / "fibers" / "events" (throws UsageError on anything
/// else).
[[nodiscard]] Backend parse_backend(const std::string& name);

/// Process default: MANATEE_SCHED when set, else kThreads. Throws
/// UsageError when MANATEE_SCHED names an unknown backend — a suite run
/// with a typo'd backend must fail, not silently measure threads.
[[nodiscard]] Backend default_backend();

/// Process default for SchedConfig::stack_budget_bytes: 40 MiB, overridden
/// by MANATEE_STACK_BUDGET_MB (whole mebibytes; 0 = always vacate). Throws
/// UsageError on a malformed value — a suite run with a typo'd budget must
/// fail, not silently measure the default.
[[nodiscard]] std::size_t default_stack_budget();

struct SchedConfig {
  Backend backend = default_backend();
  /// FiberBackend worker threads; 0 = min(hardware_concurrency, tasks).
  int workers = 0;
  /// Usable bytes per fiber stack (a guard/gap page is added on top). Rank
  /// bodies keep bulk data on the heap, so the default is deliberately
  /// small: at 16k+ ranks stacks are the dominant address-space cost.
  std::size_t stack_bytes = 256 * 1024;
  /// Events mode: the committed fiber-stack budget. Parked stacks are
  /// vacated to the heap only while the fleet's committed estimate exceeds
  /// this, so small worlds never pay the copy + refault tax and large
  /// worlds self-regulate committed stack bytes down to about the budget
  /// (the vacate rate tracks the recommit rate). 0 = vacate every eligible
  /// park unconditionally (strictest diet, highest per-park cost).
  std::size_t stack_budget_bytes = default_stack_budget();
};

/// Counters reported by a FiberBackend run (all zero under threads except
/// `workers`).
struct SchedStats {
  int workers = 0;
  std::uint64_t stacks_mapped = 0;   ///< stacks carved fresh
  std::uint64_t stacks_reused = 0;   ///< stacks served from the free tiers
  std::uint64_t dispatches = 0;      ///< fiber activations (worker→fiber)
  /// Peak estimated committed fiber-stack bytes (observed sp high-water
  /// minus decommits). The per-rank memory-diet headline number: events
  /// mode must beat fibers here at large worlds.
  std::uint64_t peak_committed = 0;
  std::uint64_t stackless_parks = 0;  ///< events: continuation-armed waits
  std::uint64_t fiber_fallbacks = 0;  ///< events: stackful drive fallbacks
  /// Events: parks whose whole stack was vacated to the heap (the parked
  /// rank held zero committed stack pages until re-dispatch).
  std::uint64_t stack_vacations = 0;
};

/// The per-task closure: receives the task index [0, n).
using TaskFn = std::function<void(int)>;

/// Run tasks 0..n-1 to completion under `config` and block until all have
/// finished. Tasks must not let exceptions escape (same contract as a
/// thread body). May not be called from inside a fiber.
SchedStats run_tasks(const SchedConfig& config, int n, const TaskFn& task);

/// The fiber hosting the calling context, or nullptr on a plain thread.
[[nodiscard]] Fiber* current_fiber() noexcept;

/// True when the calling context is a fiber of an events-mode scheduler —
/// the gate for the stackless drive loop (umpi::Rank::drive_coll).
[[nodiscard]] bool events_backend_active() noexcept;

/// Events-mode telemetry: a collective wait served stacklessly / a wait
/// that had to fall back to the stackful fiber path. No-ops elsewhere.
void count_stackless_park() noexcept;
void count_fiber_fallback() noexcept;

/// Cooperative pause for spin-style loops that poll shared state without a
/// blocking wait: on a fiber, re-enqueues the caller at the tail of the
/// ready queue (other ranks run before the next poll — the single-worker
/// livelock guard); on a thread, std::this_thread::yield().
void yield();

/// The FiberBackend (also the events backend — kEvents is this class with
/// `events()` true). Normally driven through run_tasks; exposed so the
/// scheduler unit tests can exercise park/unpark directly.
class FiberBackend {
 public:
  FiberBackend(const SchedConfig& config, int n, const TaskFn& task);
  ~FiberBackend();

  FiberBackend(const FiberBackend&) = delete;
  FiberBackend& operator=(const FiberBackend&) = delete;

  /// Run all fibers to completion. The calling thread doubles as worker 0.
  SchedStats run();

  [[nodiscard]] bool events() const noexcept { return events_; }

  void note_stackless_park() noexcept {
    stackless_parks_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_fiber_fallback() noexcept {
    fiber_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Per-OS-thread worker state. Public only for the scheduler's own
  /// thread-local plumbing; not part of the API surface.
  struct Worker {
    FiberBackend* backend = nullptr;
    int index = 0;  ///< home ready-queue shard
    ExecContext ctx;
    Fiber* current = nullptr;
    // Actions the departing fiber left for the worker to complete on its
    // own stack (a fiber cannot finish its own park: the notifier must
    // find a consistent state under the scheduler mutex).
    Waiter* pending_park = nullptr;
    Fiber* pending_yield = nullptr;
    Fiber* pending_done = nullptr;
    /// Single-worker events mode: vacated stacks whose decommit is deferred
    /// into one batched process_madvise. An entry is cancelled when its
    /// fiber re-dispatches before the flush — a short park then costs two
    /// memcpys and no syscall or page refault at all. Every listed fiber is
    /// parked and suspended at flush time, so the batch can never zero a
    /// live stack (single worker: nothing dispatches concurrently).
    struct PendingDecommit {
      Fiber* fiber = nullptr;
      detail::StackSpan span;
    };
    std::vector<PendingDecommit> pending_decommit;
    /// Recycled vacated-span buffers. Bounded by the peak number of
    /// concurrently vacated fibers on this worker, so it stays small while
    /// sparing a malloc/free pair per vacate/restore cycle.
    std::vector<std::vector<std::byte>> span_pool;
  };

 private:
  friend class Waiter;
  friend void yield();
  friend void detail::fiber_entry(Fiber* fiber);

  /// One unit of ready work: a fiber to dispatch (fiber != nullptr) or a
  /// continuation to run right on the worker stack (fn != nullptr). The
  /// continuation epoch is opaque scheduler-side — owners use it to drop
  /// stale firings.
  struct ReadyItem {
    Fiber* fiber = nullptr;
    void (*fn)(void*, std::uint64_t) = nullptr;
    void* arg = nullptr;
    std::uint64_t epoch = 0;
  };

  /// One ready-queue shard (per worker, stealable). Its mutex sits BELOW
  /// the backend mutex (lock level 35 < 40 in scripts/lock_order.json) so
  /// wake paths that already hold mutex_ can push; continuation enqueues
  /// touch only this lock — the events-mode fast path never takes mutex_.
  struct alignas(64) ReadyShard {
    common::Mutex mutex;  // lock level 35: leaf below the scheduler mutex
    std::deque<ReadyItem> items MANATEE_GUARDED_BY(mutex);
  };

  /// A pending watchdog deadline. Anchored on the stable Fiber (never the
  /// stack-allocated Waiter): the entry is stale — and skipped — unless the
  /// fiber's park epoch still matches and a park is still in flight. Lazy
  /// deletion plus periodic compaction keeps the heap O(parked), so an idle
  /// beat costs O(expiring log n), not the old O(all parked) list scan.
  struct DeadlineEntry {
    std::chrono::steady_clock::time_point deadline;
    Fiber* fiber = nullptr;
    std::uint64_t epoch = 0;
  };

  void worker_loop(Worker& worker);
  void run_fiber(Worker& worker, Fiber* fiber);
  void dispatch(Worker& worker, Fiber* fiber);
  /// Record the suspended fiber's stack depth and, in events mode, hand
  /// dead pages below a parked frame back to the kernel. Runs in the safe
  /// window after dispatch() returned and before the park is published
  /// (process_pending_locked) — the fiber cannot be re-dispatched yet.
  void observe_stack_depth(Worker& worker);
  /// Charge `grew` bytes against the committed estimate and fold the new
  /// total into the running peak.
  void note_committed_growth(std::uint64_t grew) noexcept;
  /// Issue every deferred stack decommit in (at best) one syscall.
  void flush_pending_decommits(Worker& worker);
  /// Sleep on work_cv_ for up to `period` (idle worker).
  void wait_for_work_locked(std::chrono::milliseconds period)
      MANATEE_REQUIRES(mutex_);
  /// How long an idle worker may sleep: until the earliest pending
  /// watchdog deadline (deadline heap top), with a bounded heartbeat.
  [[nodiscard]] std::chrono::milliseconds idle_period_locked()
      MANATEE_REQUIRES(mutex_);
  void process_pending_locked(Worker& worker) MANATEE_REQUIRES(mutex_);
  void expire_timeouts_locked() MANATEE_REQUIRES(mutex_);
  void compact_deadlines_locked() MANATEE_REQUIRES(mutex_);
  void enqueue_ready_locked(Fiber* fiber) MANATEE_REQUIRES(mutex_);

  /// Shard push + ready count. Safe with or without mutex_ held (the shard
  /// mutex is below it); does NOT wake sleepers — callers handle that.
  void push_shard(const ReadyItem& item);
  void push_shard_batch(const ReadyItem* items, std::size_t count);
  /// Continuation enqueue from outside the scheduler lock (Waiter::notify
  /// in continuation mode): shard push, then wake a sleeper if any.
  void enqueue_item(const ReadyItem& item) MANATEE_EXCLUDES(mutex_);
  [[nodiscard]] bool pop_ready(std::size_t home_shard, ReadyItem* out);

  // Waiter/fiber entry points. The Waiter fields they mutate (state_,
  // fiber_, timed_out_) are themselves guarded by this mutex_ — see the
  // field comments in waiter.hpp; the analysis cannot name another
  // object's member, so the cross-object guard is enforced by keeping
  // every mutation inside these MANATEE_EXCLUDES/self-locking methods.
  void prepare_park(Waiter& waiter, Fiber* fiber,
                    std::chrono::steady_clock::time_point deadline)
      MANATEE_EXCLUDES(mutex_);
  void suspend_current(Waiter* waiter);
  void notify_waiter(Waiter& waiter) MANATEE_EXCLUDES(mutex_);
  /// Wake `count` waiters (fibers and/or continuations) in one scheduler
  /// lock round and one shard round — the batched-wakeup diet for
  /// deliveries that satisfy many ranks at once.
  void notify_waiters_batch(Waiter* const* waiters, std::size_t count)
      MANATEE_EXCLUDES(mutex_);
  void yield_current();
  [[noreturn]] void fiber_main(Fiber* fiber);

  SchedConfig config_;
  bool events_ = false;
  int workers_ = 1;
  // Lock level 40 in scripts/lock_order.json: acquired below the store's
  // interest mutex (park/notify arrive with the store lock held), above
  // only the ready-queue shard locks (35).
  common::Mutex mutex_;
  // Worker idle/wake CV of the backend that *implements* Waiter; paired
  // with mutex_ through wait_for_work_locked's adopt-lock bridge.
  std::condition_variable work_cv_;  // manatee-lint: allow(raw-condvar) — backend-internal worker wakeup, not a rank park site
  /// Ready work, sharded per worker. Never resized while workers run.
  std::vector<std::unique_ptr<ReadyShard>> shards_;
  /// Items across all shards (signed: push/pop racing on different shards
  /// may transiently observe either order). Paired with sleepers_ as an
  /// eventcount: a pusher that sees sleepers_ > 0 after its increment
  /// takes mutex_ and signals; a sleeper rechecks after registering.
  std::atomic<std::int64_t> ready_count_{0};
  std::atomic<int> sleepers_{0};
  std::atomic<std::uint64_t> push_cursor_{0};  ///< off-worker push spraying
  std::vector<DeadlineEntry> deadline_heap_ MANATEE_GUARDED_BY(mutex_);
  std::size_t live_ MANATEE_GUARDED_BY(mutex_) = 0;
  std::atomic<std::uint64_t> dispatches_{0};
  std::atomic<std::uint64_t> stackless_parks_{0};
  std::atomic<std::uint64_t> fiber_fallbacks_{0};
  std::atomic<std::uint64_t> stack_vacations_{0};
  /// Estimated committed stack bytes (sum of fiber committed spans) and
  /// its running peak — SchedStats::peak_committed.
  std::atomic<std::uint64_t> committed_bytes_{0};
  std::atomic<std::uint64_t> peak_committed_{0};
  StackPool stacks_ MANATEE_GUARDED_BY(mutex_);
  /// Created in the constructor, destroyed after every worker joined;
  /// never resized while workers run (fiber pointers must stay stable).
  std::vector<std::unique_ptr<Fiber>> fibers_;
  bool ran_ = false;
};

}  // namespace manatee::sched
