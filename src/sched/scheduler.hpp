// scheduler.hpp — the rank scheduler: run N rank tasks under one of two
// backends.
//
//   * ThreadBackend — one OS thread per rank (the historical model, and
//     still the default): simple, preemptive, but futex-bound once rank
//     ping-pong dominates and capped at a few thousand ranks per process.
//   * FiberBackend — N stackful fibers multiplexed onto a worker pool
//     sized to hardware concurrency. Ranks block cooperatively through
//     sched::Waiter (waiter.hpp): a park suspends the fiber in user space
//     and the delivery that satisfies its declared interest re-enqueues
//     exactly that fiber. On the 1-CPU figure box this turns every
//     rank-to-rank hop from a ~2.5 µs futex round trip into a ~100 ns
//     context switch, which is what lets 1k–16k-rank worlds run at all.
//
// Selection is per job via SchedConfig (RuntimeConfig::sched); the
// MANATEE_SCHED environment variable ("threads" | "fibers") overrides the
// built-in default so whole suites (e.g. the nightly lifecycle soak) can be
// flipped wholesale. Semantics are backend-independent by construction —
// virtual-time merges happen at observation points only (DESIGN.md §8) —
// and the cross-backend equivalence suite (tests/sched) holds the two
// backends to bit-identical results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "sched/fiber.hpp"
#include "sched/waiter.hpp"

namespace manatee::sched {

enum class Backend { kThreads, kFibers };

[[nodiscard]] const char* backend_name(Backend backend) noexcept;

/// Parse "threads" / "fibers" (throws UsageError on anything else).
[[nodiscard]] Backend parse_backend(const std::string& name);

/// Process default: MANATEE_SCHED when set and valid, else kThreads.
[[nodiscard]] Backend default_backend() noexcept;

struct SchedConfig {
  Backend backend = default_backend();
  /// FiberBackend worker threads; 0 = min(hardware_concurrency, tasks).
  int workers = 0;
  /// Usable bytes per fiber stack (a guard page is added on top). Rank
  /// bodies keep bulk data on the heap, so the default is deliberately
  /// small: at 16k ranks stacks are the dominant address-space cost.
  std::size_t stack_bytes = 256 * 1024;
};

/// Counters reported by a FiberBackend run (all zero under threads except
/// `workers`).
struct SchedStats {
  int workers = 0;
  std::uint64_t stacks_mapped = 0;   ///< stacks mmap'd fresh
  std::uint64_t stacks_reused = 0;   ///< stacks served from the free list
  std::uint64_t dispatches = 0;      ///< fiber activations (worker→fiber)
};

/// The per-task closure: receives the task index [0, n).
using TaskFn = std::function<void(int)>;

/// Run tasks 0..n-1 to completion under `config` and block until all have
/// finished. Tasks must not let exceptions escape (same contract as a
/// thread body). May not be called from inside a fiber.
SchedStats run_tasks(const SchedConfig& config, int n, const TaskFn& task);

/// The fiber hosting the calling context, or nullptr on a plain thread.
[[nodiscard]] Fiber* current_fiber() noexcept;

/// Cooperative pause for spin-style loops that poll shared state without a
/// blocking wait: on a fiber, re-enqueues the caller at the tail of the
/// ready queue (other ranks run before the next poll — the single-worker
/// livelock guard); on a thread, std::this_thread::yield().
void yield();

/// The FiberBackend. Normally driven through run_tasks; exposed so the
/// scheduler unit tests can exercise park/unpark directly.
class FiberBackend {
 public:
  FiberBackend(const SchedConfig& config, int n, const TaskFn& task);
  ~FiberBackend();

  FiberBackend(const FiberBackend&) = delete;
  FiberBackend& operator=(const FiberBackend&) = delete;

  /// Run all fibers to completion. The calling thread doubles as worker 0.
  SchedStats run();

  /// Per-OS-thread worker state. Public only for the scheduler's own
  /// thread-local plumbing; not part of the API surface.
  struct Worker {
    FiberBackend* backend = nullptr;
    ExecContext ctx;
    Fiber* current = nullptr;
    // Actions the departing fiber left for the worker to complete on its
    // own stack (a fiber cannot finish its own park: the notifier must
    // find a consistent state under the scheduler mutex).
    Waiter* pending_park = nullptr;
    Fiber* pending_yield = nullptr;
    Fiber* pending_done = nullptr;
  };

 private:
  friend class Waiter;
  friend void yield();
  friend void detail::fiber_entry(Fiber* fiber);

  void worker_loop(Worker& worker);
  void dispatch(Worker& worker, Fiber* fiber);
  /// Sleep on work_cv_ for up to `period` (the idle watchdog scan beat).
  void wait_for_work_locked(std::chrono::milliseconds period)
      MANATEE_REQUIRES(mutex_);
  void process_pending_locked(Worker& worker) MANATEE_REQUIRES(mutex_);
  void expire_timeouts_locked() MANATEE_REQUIRES(mutex_);
  void enqueue_ready_locked(Fiber* fiber) MANATEE_REQUIRES(mutex_);
  void link_parked_locked(Waiter& waiter) MANATEE_REQUIRES(mutex_);
  void unlink_parked_locked(Waiter& waiter) MANATEE_REQUIRES(mutex_);

  // Waiter/fiber entry points. The Waiter fields they mutate (state_,
  // deadline_, links) are themselves guarded by this mutex_ — see the
  // field comments in waiter.hpp; the analysis cannot name another
  // object's member, so the cross-object guard is enforced by keeping
  // every mutation inside these MANATEE_EXCLUDES/self-locking methods.
  void prepare_park(Waiter& waiter, Fiber* fiber,
                    std::chrono::steady_clock::time_point deadline)
      MANATEE_EXCLUDES(mutex_);
  void suspend_current(Waiter* waiter);
  void notify_waiter(Waiter& waiter) MANATEE_EXCLUDES(mutex_);
  void yield_current();
  [[noreturn]] void fiber_main(Fiber* fiber);

  SchedConfig config_;
  // Lock level 40 in scripts/lock_order.json: acquired below the store's
  // interest mutex (park/notify arrive with the store lock held), above
  // nothing — scheduler critical sections call out to no other lock.
  common::Mutex mutex_;
  // Worker idle/wake CV of the backend that *implements* Waiter; paired
  // with mutex_ through wait_for_work_locked's adopt-lock bridge.
  std::condition_variable work_cv_;  // manatee-lint: allow(raw-condvar) — backend-internal worker wakeup, not a rank park site
  std::deque<Fiber*> ready_ MANATEE_GUARDED_BY(mutex_);
  Waiter* parked_head_ MANATEE_GUARDED_BY(mutex_) = nullptr;
  std::size_t live_ MANATEE_GUARDED_BY(mutex_) = 0;
  std::uint64_t dispatches_ MANATEE_GUARDED_BY(mutex_) = 0;
  StackPool stacks_ MANATEE_GUARDED_BY(mutex_);
  /// Created in the constructor, destroyed after every worker joined;
  /// never resized while workers run (fiber pointers must stay stable).
  std::vector<std::unique_ptr<Fiber>> fibers_;
  bool ran_ = false;
};

}  // namespace manatee::sched
